#include "mmlp/util/obs.hpp"

#include <algorithm>
#include <cmath>
#include <new>
#include <sstream>

namespace mmlp::obs {

namespace {

/// Fixed anchor so trace timestamps are comparable across threads.
/// Initialised on first use (before any worker can record, because
/// recording goes through Tracer::instance() which touches this).
std::chrono::steady_clock::time_point process_anchor() {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return anchor;
}

void append_json_number(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << "0";  // JSON has no Inf/NaN; metrics should never produce them
    return;
  }
  std::ostringstream formatted;
  formatted.precision(12);
  formatted << value;
  out << formatted.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer& Tracer::instance() {
  static Tracer tracer;
  (void)process_anchor();  // pin the anchor before any span timestamps
  return tracer;
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_anchor())
          .count());
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Registration is once per (thread, tracer) and takes the mutex; the
  // cached pointer makes every later record() lock-free. clear() never
  // removes buffers, so the pointer stays valid for the thread's life.
  // A generation stamp makes clear() cheap: record() lazily resets its
  // own buffer when it first writes after a clear.
  thread_local ThreadBuffer* cached = nullptr;
  if (cached == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->ring.resize(kBufferCapacity);
    std::lock_guard<std::mutex> lock(mutex_);
    buffer->thread_index = static_cast<std::uint32_t>(buffers_.size());
    cached = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  return *cached;
}

void Tracer::record(const char* name, const char* category,
                    std::uint64_t start_ns, std::uint64_t dur_ns) {
  ThreadBuffer& buffer = local_buffer();
  // Single writer per buffer: only the owning thread mutates size/ring.
  const std::size_t used = buffer.size.load(std::memory_order_relaxed);
  if (used >= kBufferCapacity) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.ring[used] = TraceEvent{name, category, start_ns, dur_ns};
  // Release so a concurrent events() snapshot that reads this size sees
  // the fully written event.
  buffer.size.store(used + 1, std::memory_order_release);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) {
    buffer->size.store(0, std::memory_order_release);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::pair<std::uint32_t, TraceEvent>> Tracer::events() const {
  std::vector<std::pair<std::uint32_t, TraceEvent>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    const std::size_t used = buffer->size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < used; ++i) {
      out.emplace_back(buffer->thread_index, buffer->ring[i]);
    }
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::string Tracer::to_chrome_json() const {
  const auto snapshot = events();
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& [tid, event] : snapshot) {
    if (!first) {
      out << ",";
    }
    first = false;
    // Complete ("ph":"X") events; ts/dur in microseconds per the Trace
    // Event format. Fractional µs keeps sub-microsecond spans nonzero.
    out << "\n  {\"name\": \"" << event.name << "\", \"cat\": \""
        << event.category << "\", \"ph\": \"X\", \"ts\": ";
    append_json_number(out, static_cast<double>(event.start_ns) / 1000.0);
    out << ", \"dur\": ";
    append_json_number(out, static_cast<double>(event.dur_ns) / 1000.0);
    out << ", \"pid\": 1, \"tid\": " << tid << "}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"producer\": "
         "\"mmlp::obs\", \"dropped_events\": "
      << dropped() << "}}";
  return out.str();
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

void atomic_add_double(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double value) {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected &&
         !target.compare_exchange_weak(expected, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

double Histogram::bucket_lower(int b) {
  return kMinValue *
         std::pow(10.0, static_cast<double>(b) / kBucketsPerDecade);
}

void Histogram::observe(double value) {
  int bucket = 0;
  if (value >= kMinValue) {
    // b = floor(log10(v / 1e-6) * 8), clamped to the grid.
    const double position =
        std::log10(value / kMinValue) * kBucketsPerDecade;
    bucket = std::clamp(static_cast<int>(position), 0, kNumBuckets - 1);
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  const std::int64_t previous =
      count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, value);
  if (previous == 0) {
    // First sample seeds min/max; races with concurrent observers are
    // resolved by the min/max CAS loops below.
    double zero = 0.0;
    min_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
    zero = 0.0;
    max_.compare_exchange_strong(zero, value, std::memory_order_relaxed);
  }
  atomic_min_double(min_, value);
  atomic_max_double(max_, value);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(kNumBuckets);
  for (int b = 0; b < kNumBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::percentile(double q) const {
  const std::int64_t total = count();
  if (total <= 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double lo = min();
  const double hi = max();
  if (q <= 0.0) {
    return lo;
  }
  if (q >= 1.0) {
    return hi;
  }
  // Rank in [0, total-1], matching the linear-interpolation convention
  // of mmlp::percentile (q=0 → min, q=1 → max).
  const double rank = q * static_cast<double>(total - 1);
  std::int64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const std::int64_t in_bucket =
        buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket == 0) {
      continue;
    }
    if (rank < static_cast<double>(cumulative + in_bucket)) {
      // Geometric interpolation inside the bucket, clamped to the
      // recorded extremes so the estimate never leaves [min, max].
      const double fraction = (rank - static_cast<double>(cumulative)) /
                              static_cast<double>(in_bucket);
      const double lower = std::max(bucket_lower(b), lo);
      const double upper = std::min(bucket_lower(b + 1), std::max(hi, lower));
      const double estimate =
          lower > 0.0 && upper > lower
              ? lower * std::pow(upper / lower, fraction)
              : lower;
      return std::clamp(estimate, lo, hi);
    }
    cumulative += in_bucket;
  }
  return hi;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace(name, gauge->value());
  }
  return out;
}

std::string Registry::to_json_line() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "" : ", ") << "\"" << name << "\": " << counter->value();
    first = false;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "" : ", ") << "\"" << name << "\": " << gauge->value();
    first = false;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "" : ", ") << "\"" << name
        << "\": {\"count\": " << histogram->count() << ", \"sum\": ";
    append_json_number(out, histogram->sum());
    out << ", \"min\": ";
    append_json_number(out, histogram->min());
    out << ", \"max\": ";
    append_json_number(out, histogram->max());
    out << ", \"p50\": ";
    append_json_number(out, histogram->percentile(0.50));
    out << ", \"p90\": ";
    append_json_number(out, histogram->percentile(0.90));
    out << ", \"p99\": ";
    append_json_number(out, histogram->percentile(0.99));
    out << "}";
    first = false;
  }
  out << "}}";
  return out.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->add(-counter->value());
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->set(0);
  }
  for (auto& [name, histogram] : histograms_) {
    // Histograms have no reset API of their own (the hot path must stay
    // trivially simple); replacing the object would invalidate cached
    // references, so zero it in place via placement re-initialisation.
    histogram->~Histogram();
    new (histogram.get()) Histogram();
  }
}

}  // namespace mmlp::obs

// Checkout pool of per-worker scratch objects.
//
// The per-agent solve loops amortise expensive workspaces (ViewScratch,
// MaterializeArena, simplex tableaus) by creating one per parallel chunk.
// A ScratchPool lifts that reuse across *calls*: workers lease an object
// for the duration of a chunk and return it on scope exit, so a
// long-lived engine::Session keeps the warmed buffers alive between
// solves instead of reallocating them per request. Scratch objects only
// donate capacity (never state), so which lease a worker happens to get
// cannot affect results.
//
// Concurrency: the fast path is a fixed array of atomic slots — acquire
// exchanges a slot pointer out, release exchanges it back in — so under
// 8-way chunk churn workers never serialize on a mutex (the old design
// took a global lock per lease, which showed up as contention in the
// ROADMAP item 3 scaling push). A mutex-guarded overflow vector catches
// the rare case of more concurrent leases than slots.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "mmlp/util/obs.hpp"

namespace mmlp {

template <typename T>
class ScratchPool {
 public:
  /// RAII lease: returns the object to the pool on destruction.
  class Lease {
   public:
    Lease(ScratchPool* pool, std::unique_ptr<T> object)
        : pool_(pool), object_(std::move(object)) {}
    ~Lease() {
      if (object_ != nullptr) {
        pool_->release(std::move(object_));
      }
    }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), object_(std::move(other.object_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    T& operator*() { return *object_; }
    T* operator->() { return object_.get(); }

   private:
    ScratchPool* pool_;
    std::unique_ptr<T> object_;
  };

  ScratchPool() {
    for (auto& slot : slots_) {
      slot.store(nullptr, std::memory_order_relaxed);
    }
  }

  ~ScratchPool() {
    for (auto& slot : slots_) {
      delete slot.exchange(nullptr, std::memory_order_acquire);
    }
  }

  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// Check out a scratch object (an idle one when available, otherwise a
  /// freshly constructed one). Safe to call from any worker thread;
  /// lock-free whenever an idle slot is populated.
  Lease acquire() {
    static obs::Counter& lease_counter =
        obs::Registry::global().counter("scratch.leases");
    lease_counter.increment();
    for (auto& slot : slots_) {
      if (slot.load(std::memory_order_relaxed) != nullptr) {
        T* object = slot.exchange(nullptr, std::memory_order_acquire);
        if (object != nullptr) {
          reuses_.fetch_add(1, std::memory_order_relaxed);
          return Lease(this, std::unique_ptr<T>(object));
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(overflow_mutex_);
      if (!overflow_.empty()) {
        std::unique_ptr<T> object = std::move(overflow_.back());
        overflow_.pop_back();
        reuses_.fetch_add(1, std::memory_order_relaxed);
        return Lease(this, std::move(object));
      }
    }
    creations_.fetch_add(1, std::memory_order_relaxed);
    // Construction happens outside any lock; T may allocate heavily.
    return Lease(this, std::make_unique<T>());
  }

  /// Diagnostics: how many leases were served by construction vs reuse.
  std::size_t creations() const {
    return creations_.load(std::memory_order_relaxed);
  }
  std::size_t reuses() const {
    return reuses_.load(std::memory_order_relaxed);
  }

 private:
  // Enough slots that every worker of an 8–16-way pool parks its object
  // without touching the overflow lock; scratch objects are heavy, so
  // the array stays small rather than per-thread unbounded.
  static constexpr std::size_t kSlots = 32;

  void release(std::unique_ptr<T> object) {
    T* raw = object.release();
    for (auto& slot : slots_) {
      if (slot.load(std::memory_order_relaxed) == nullptr) {
        T* expected = nullptr;
        if (slot.compare_exchange_strong(expected, raw,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
          return;
        }
      }
    }
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    overflow_.emplace_back(raw);
  }

  std::atomic<T*> slots_[kSlots];
  std::mutex overflow_mutex_;
  std::vector<std::unique_ptr<T>> overflow_;
  std::atomic<std::size_t> creations_{0};
  std::atomic<std::size_t> reuses_{0};
};

}  // namespace mmlp

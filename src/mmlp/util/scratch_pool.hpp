// Checkout pool of per-worker scratch objects.
//
// The per-agent solve loops amortise expensive workspaces (ViewScratch,
// MaterializeArena, simplex tableaus) by creating one per parallel chunk.
// A ScratchPool lifts that reuse across *calls*: workers lease an object
// for the duration of a chunk and return it on scope exit, so a
// long-lived engine::Session keeps the warmed buffers alive between
// solves instead of reallocating them per request. Scratch objects only
// donate capacity (never state), so which lease a worker happens to get
// cannot affect results.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "mmlp/util/obs.hpp"

namespace mmlp {

template <typename T>
class ScratchPool {
 public:
  /// RAII lease: returns the object to the pool on destruction.
  class Lease {
   public:
    Lease(ScratchPool* pool, std::unique_ptr<T> object)
        : pool_(pool), object_(std::move(object)) {}
    ~Lease() {
      if (object_ != nullptr) {
        pool_->release(std::move(object_));
      }
    }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), object_(std::move(other.object_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    T& operator*() { return *object_; }
    T* operator->() { return object_.get(); }

   private:
    ScratchPool* pool_;
    std::unique_ptr<T> object_;
  };

  /// Check out a scratch object (an idle one when available, otherwise a
  /// freshly constructed one). Safe to call from any worker thread.
  Lease acquire() {
    static obs::Counter& lease_counter =
        obs::Registry::global().counter("scratch.leases");
    lease_counter.increment();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!idle_.empty()) {
        std::unique_ptr<T> object = std::move(idle_.back());
        idle_.pop_back();
        ++reuses_;
        return Lease(this, std::move(object));
      }
      ++creations_;
    }
    // Construction happens outside the lock; T may allocate heavily.
    return Lease(this, std::make_unique<T>());
  }

  /// Diagnostics: how many leases were served by construction vs reuse.
  std::size_t creations() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return creations_;
  }
  std::size_t reuses() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reuses_;
  }

 private:
  void release(std::unique_ptr<T> object) {
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(object));
  }

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<T>> idle_;
  std::size_t creations_ = 0;
  std::size_t reuses_ = 0;
};

}  // namespace mmlp

#include "mmlp/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "mmlp/util/check.hpp"

namespace mmlp {

void OnlineStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double OnlineStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  MMLP_CHECK_GT(count_, 0u);
  return min_;
}

double OnlineStats::max() const {
  MMLP_CHECK_GT(count_, 0u);
  return max_;
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  OnlineStats acc;
  for (const double v : values) {
    acc.add(v);
  }
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = percentile(values, 0.5);
  s.p90 = percentile(values, 0.9);
  return s;
}

double percentile(std::vector<double> values, double q) {
  MMLP_CHECK(!values.empty());
  MMLP_CHECK_GE(q, 0.0);
  MMLP_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double geometric_mean(const std::vector<double>& values) {
  MMLP_CHECK(!values.empty());
  double log_sum = 0.0;
  for (const double v : values) {
    MMLP_CHECK_GT(v, 0.0);
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace mmlp

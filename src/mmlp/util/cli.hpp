// Minimal command-line flag parser for examples and experiment binaries.
//
// Supports --name value and --name=value forms plus boolean switches.
// Unknown flags are an error so typos in experiment sweeps fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mmlp {

class ArgParser {
 public:
  ArgParser(std::string program_description);

  /// Register flags before parse(). `help` is shown by --help.
  void add_flag(const std::string& name, const std::string& help,
                const std::string& default_value);
  void add_switch(const std::string& name, const std::string& help);

  /// Parse argv. Returns false if --help was requested (help printed) or
  /// on error (message printed to stderr).
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  std::string help_text() const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool is_switch = false;
    bool seen = false;
  };

  const Flag& find(const std::string& name) const;

  std::string description_;
  std::string program_name_;
  std::map<std::string, Flag> flags_;
};

}  // namespace mmlp

// Deterministic random number generation.
//
// All randomness in the library flows through Rng so that every experiment
// is reproducible from a single 64-bit seed. The generator is
// xoshiro256** (Blackman & Vigna), seeded via splitmix64; both are
// implemented here to avoid a dependency on unspecified standard-library
// distributions (libstdc++ and libc++ produce different streams from the
// same engine, which would make cross-platform reproduction impossible).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mmlp/util/check.hpp"

namespace mmlp {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with explicit, portable distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// UniformRandomBitGenerator interface (for std::shuffle-free use).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

  /// Uniform integer in [0, bound), bound > 0. Uses Lemire rejection to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (deterministic; no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<std::int32_t> permutation(std::int32_t n);

  /// Sample `count` distinct values from {0, ..., n-1} (count <= n).
  std::vector<std::int32_t> sample_without_replacement(std::int32_t n,
                                                       std::int32_t count);

  /// Derive an independent child generator (for per-task streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace mmlp

// Console table / CSV emission for the experiment harnesses.
//
// Every exp_* binary prints the series the paper's evaluation section
// would have contained; TableWriter renders them as aligned text on
// stdout and can mirror the rows to a CSV file for plotting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace mmlp {

/// One table cell: text, integer or double (with per-table precision).
using Cell = std::variant<std::string, std::int64_t, double>;

class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers, int precision = 4);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> row);

  std::size_t num_rows() const { return rows_.size(); }

  /// Render with aligned columns, a header rule and an optional title.
  std::string to_text(const std::string& title = "") const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  /// Print to stdout.
  void print(const std::string& title = "") const;

  /// Write CSV to `path`; returns false (and prints a warning) on failure.
  bool write_csv(const std::string& path) const;

 private:
  std::string format_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

}  // namespace mmlp

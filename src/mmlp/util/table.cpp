#include "mmlp/util/table.hpp"

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "mmlp/util/check.hpp"

namespace mmlp {

TableWriter::TableWriter(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
  MMLP_CHECK(!headers_.empty());
}

void TableWriter::add_row(std::vector<Cell> row) {
  MMLP_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

std::string TableWriter::format_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    return *s;
  }
  if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    return std::to_string(*i);
  }
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return oss.str();
}

std::string TableWriter::to_text(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream oss;
  if (!title.empty()) {
    oss << title << '\n';
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      oss << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
          << cells[c];
    }
    oss << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  oss << std::string(total, '-') << '\n';
  for (const auto& cells : rendered) {
    emit_row(cells);
  }
  return oss.str();
}

std::string TableWriter::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) {
      return s;
    }
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') {
        out += "\"\"";
      } else {
        out += ch;
      }
    }
    out += '"';
    return out;
  };
  std::ostringstream oss;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    oss << (c == 0 ? "" : ",") << quote(headers_[c]);
  }
  oss << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << (c == 0 ? "" : ",") << quote(format_cell(row[c]));
    }
    oss << '\n';
  }
  return oss.str();
}

void TableWriter::print(const std::string& title) const {
  std::cout << to_text(title) << std::flush;
}

bool TableWriter::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot open " << path << " for writing\n";
    return false;
  }
  out << to_csv();
  return static_cast<bool>(out);
}

}  // namespace mmlp

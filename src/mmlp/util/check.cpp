#include "mmlp/util/check.hpp"

namespace mmlp::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream oss;
  oss << "MMLP_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw CheckError(oss.str());
}

}  // namespace mmlp::detail

#include "mmlp/util/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "mmlp/util/check.hpp"

namespace mmlp {

namespace {

using clock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - since)
          .count());
}

/// Target wall time per bulk chunk once the per-item cost is known:
/// long enough to amortise the claim CAS, short enough that stragglers
/// rebalance across workers.
constexpr std::uint64_t kTargetChunkNs = 200'000;

/// Worker count requested via environment / hardware when a pool is
/// constructed with 0 threads.
std::size_t resolve_default_threads() {
  if (const char* env = std::getenv("MMLP_THREADS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

// Size requested for the global pool before its construction; 0 means
// environment / hardware. Guarded by global_config_mutex so a configure
// racing the first global() use is well-defined.
std::mutex global_config_mutex;
std::size_t global_requested_threads = 0;
bool global_pool_created = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
    : counters_(num_threads == 0 ? resolve_default_threads() : num_threads),
      queues_(counters_.size()) {
  const std::size_t resolved = counters_.size();
  // Bulk jobs register into this vector with zero steady-state
  // allocations; reserve enough slots for deeply nested regions.
  jobs_.reserve(4 * resolved + 16);
  workers_.reserve(resolved);
  for (std::size_t t = 0; t < resolved; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sched_mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[target].mutex);
    queues_[target].tasks.push_back(std::move(task));
  }
  queued_tasks_.fetch_add(1, std::memory_order_release);
  in_flight_.fetch_add(1, std::memory_order_release);
  {
    // Taking sched_mutex_ around the notify pairs with the worker's
    // locked re-check before sleeping: a submit can never slip between
    // that check and the wait.
    std::lock_guard<std::mutex> lock(sched_mutex_);
    MMLP_CHECK(!stop_);
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(sched_mutex_);
  cv_done_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out(counters_.size());
  for (std::size_t t = 0; t < counters_.size(); ++t) {
    out[t].busy_ns = counters_[t].busy_ns.load(std::memory_order_relaxed);
    out[t].idle_ns = counters_[t].idle_ns.load(std::memory_order_relaxed);
    out[t].tasks = counters_[t].tasks.load(std::memory_order_relaxed);
    out[t].chunks = counters_[t].chunks.load(std::memory_order_relaxed);
    out[t].steals = counters_[t].steals.load(std::memory_order_relaxed);
  }
  return out;
}

std::size_t ThreadPool::queue_depth() const {
  return queued_tasks_.load(std::memory_order_acquire);
}

bool ThreadPool::try_run_task(std::size_t worker_index) {
  std::function<void()> task;
  bool stolen = false;
  {
    // Own queue first (front — FIFO for the owner)…
    TaskQueue& own = queues_[worker_index];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.front());
      own.tasks.pop_front();
    }
  }
  if (!task) {
    // …then steal from a peer (back — opposite end from the owner).
    for (std::size_t k = 1; k < queues_.size() && !task; ++k) {
      TaskQueue& peer = queues_[(worker_index + k) % queues_.size()];
      std::lock_guard<std::mutex> lock(peer.mutex);
      if (!peer.tasks.empty()) {
        task = std::move(peer.tasks.back());
        peer.tasks.pop_back();
        stolen = true;
      }
    }
  }
  if (!task) {
    return false;
  }
  queued_tasks_.fetch_sub(1, std::memory_order_release);
  WorkerCounters& counters = counters_[worker_index];
  if (stolen) {
    counters.steals.fetch_add(1, std::memory_order_relaxed);
  }
  const clock::time_point start = clock::now();
  task();  // noexcept contract: see submit()
  counters.busy_ns.fetch_add(elapsed_ns(start), std::memory_order_relaxed);
  counters.tasks.fetch_add(1, std::memory_order_relaxed);
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(sched_mutex_);
    cv_done_.notify_all();
  }
  return true;
}

std::size_t ThreadPool::chunk_size(const BulkJob& job, std::size_t cur) const {
  const std::size_t remaining = job.count - cur;
  // Guided self-scheduling: early chunks are large (low claim
  // overhead), late chunks shrink so the tail balances.
  std::size_t chunk = remaining / (4 * (workers_.size() + 1));
  // Adaptive cap: once a chunk has been timed, bound the next ones to
  // ~kTargetChunkNs of work so one expensive-item chunk cannot become
  // the straggler that serializes the whole region.
  const std::uint64_t cost = job.ns_per_item.load(std::memory_order_relaxed);
  if (cost > 0) {
    chunk = std::min<std::size_t>(
        chunk, static_cast<std::size_t>(kTargetChunkNs / cost) + 1);
  }
  chunk = std::max(chunk, job.min_grain);
  return std::clamp<std::size_t>(chunk, 1, remaining);
}

void ThreadPool::execute_chunks(BulkJob& job, WorkerCounters* counters) {
  for (;;) {
    if (job.failed.load(std::memory_order_acquire)) {
      return;
    }
    if (job.cancel != nullptr && job.cancel->expired()) {
      // Cancellation rides the poison-the-cursor path: record a
      // CancelledError as the job's first error (unless a body already
      // failed) and stop claiming. Other executors observe `failed` and
      // drain; run_bulk rethrows in the caller.
      {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (job.error == nullptr) {
          job.error =
              std::make_exception_ptr(CancelledError(job.cancel->reason()));
        }
      }
      job.failed.store(true, std::memory_order_release);
      return;
    }
    std::size_t cur = job.cursor.load(std::memory_order_relaxed);
    if (cur >= job.count) {
      return;
    }
    const std::size_t chunk = chunk_size(job, cur);
    if (!job.cursor.compare_exchange_weak(cur, cur + chunk,
                                          std::memory_order_acq_rel)) {
      continue;  // lost the claim race; re-read the cursor
    }
    if (cur >= job.count) {
      return;
    }
    const std::size_t end = std::min(job.count, cur + chunk);
    const clock::time_point start = clock::now();
    try {
      // Workers inherit the caller's token for the duration of the
      // body, so cancel::checkpoint() and nested bulk regions inside
      // the body observe it.
      cancel::CancelScope scope(job.cancel);
      job.body(job.ctx, cur, end);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (job.error == nullptr) {
          job.error = std::current_exception();
        }
      }
      job.failed.store(true, std::memory_order_release);
      return;
    }
    const std::uint64_t ns = elapsed_ns(start);
    job.ns_per_item.store(std::max<std::uint64_t>(
                              1, ns / static_cast<std::uint64_t>(end - cur)),
                          std::memory_order_relaxed);
    if (counters != nullptr) {
      counters->busy_ns.fetch_add(ns, std::memory_order_relaxed);
      counters->chunks.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::run_bulk(std::size_t count, std::size_t min_grain,
                          BulkBody body, void* ctx) {
  if (count == 0) {
    return;
  }
  BulkJob job;
  job.count = count;
  job.min_grain =
      min_grain > 0
          ? min_grain
          : std::max<std::size_t>(1, count / (16 * (workers_.size() + 1)));
  job.body = body;
  job.ctx = ctx;
  job.cancel = cancel::current_token();
  {
    std::lock_guard<std::mutex> lock(sched_mutex_);
    MMLP_CHECK(!stop_);
    jobs_.push_back(&job);  // within reserved capacity: no allocation
  }
  cv_work_.notify_all();

  // The caller is an executor too: it claims chunks like any worker, so
  // a bulk region never strands the submitting thread in a blocking
  // wait while work remains, and nested regions make progress even when
  // every worker is busy elsewhere.
  execute_chunks(job, nullptr);

  {
    // Wait for every attached worker to leave the claim loop, then
    // deregister. Workers attach/detach under sched_mutex_, so after
    // this wait no thread can still hold a pointer into this frame.
    std::unique_lock<std::mutex> lock(sched_mutex_);
    cv_done_.wait(lock, [&job] { return job.attached == 0; });
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
  }
  if (job.error != nullptr) {
    std::rethrow_exception(job.error);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  WorkerCounters& counters = counters_[worker_index];
  for (;;) {
    if (try_run_task(worker_index)) {
      continue;
    }
    // Bulk regions: attach to the first job with unclaimed work.
    BulkJob* job = nullptr;
    {
      std::lock_guard<std::mutex> lock(sched_mutex_);
      for (BulkJob* candidate : jobs_) {
        if (!candidate->failed.load(std::memory_order_relaxed) &&
            candidate->cursor.load(std::memory_order_relaxed) <
                candidate->count) {
          job = candidate;
          ++job->attached;
          break;
        }
      }
    }
    if (job != nullptr) {
      execute_chunks(*job, &counters);
      bool drained = false;
      {
        std::lock_guard<std::mutex> lock(sched_mutex_);
        drained = --job->attached == 0;
      }
      if (drained) {
        cv_done_.notify_all();
      }
      continue;
    }
    // No tasks, no bulk work: sleep until something arrives. The
    // predicates are re-checked under sched_mutex_, which every
    // producer holds around its notify, so wakeups cannot be missed.
    // A registered-but-drained job does NOT count as work (its caller
    // is only waiting to deregister) — otherwise idle workers would
    // spin instead of sleeping.
    std::unique_lock<std::mutex> lock(sched_mutex_);
    bool bulk_work = false;
    for (const BulkJob* candidate : jobs_) {
      if (!candidate->failed.load(std::memory_order_relaxed) &&
          candidate->cursor.load(std::memory_order_relaxed) <
              candidate->count) {
        bulk_work = true;
        break;
      }
    }
    if (queued_tasks_.load(std::memory_order_acquire) > 0 || bulk_work) {
      continue;
    }
    if (stop_) {
      return;  // queues drained: safe to exit
    }
    const clock::time_point wait_start = clock::now();
    cv_work_.wait(lock);
    counters.idle_ns.fetch_add(elapsed_ns(wait_start),
                               std::memory_order_relaxed);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool& pool = []() -> ThreadPool& {
    std::lock_guard<std::mutex> lock(global_config_mutex);
    static ThreadPool instance(global_requested_threads);
    global_pool_created = true;
    return instance;
  }();
  return pool;
}

void set_global_thread_count(std::size_t num_threads) {
  std::lock_guard<std::mutex> lock(global_config_mutex);
  if (global_pool_created) {
    const std::size_t resolved =
        num_threads == 0 ? resolve_default_threads() : num_threads;
    MMLP_CHECK_MSG(ThreadPool::global().size() == resolved,
                   "global thread pool already created with "
                       << ThreadPool::global().size()
                       << " workers; cannot resize to " << resolved);
    return;
  }
  global_requested_threads = num_threads;
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool, std::size_t grain) {
  if (count == 0) {
    return;
  }
  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }
  if (pool->size() <= 1 || count == 1) {
    const CancelToken* token = cancel::current_token();
    if (token == nullptr) {
      serial_for(count, fn);
      return;
    }
    // Serial fallback under an active token: poll every 256 indices so
    // a deadline fires on a single-thread pool too, without paying a
    // clock read per tiny iteration.
    for (std::size_t i = 0; i < count; ++i) {
      if ((i & 0xFF) == 0) {
        token->raise_if_expired();
      }
      fn(i);
    }
    return;
  }
  // The std::function is reached by reference through the trampoline:
  // the dispatch allocates nothing.
  auto* body = const_cast<std::function<void(std::size_t)>*>(&fn);
  pool->run_bulk(
      count, grain,
      [](void* ctx, std::size_t begin, std::size_t end) {
        const auto& body_fn = *static_cast<std::function<void(std::size_t)>*>(ctx);
        for (std::size_t i = begin; i < end; ++i) {
          body_fn(i);
        }
      },
      body);
}

void serial_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    fn(i);
  }
}

}  // namespace mmlp

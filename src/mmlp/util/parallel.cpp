#include "mmlp/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "mmlp/util/check.hpp"

namespace mmlp {

namespace {
// Set while a pool worker is running a task; nested parallel_for calls
// from inside a task run serially instead of deadlocking on wait_idle().
thread_local bool tls_inside_worker = false;

// Size requested for the global pool before its construction; 0 means
// hardware concurrency. Guarded by global_config_mutex so a configure
// racing the first global() use is well-defined.
std::mutex global_config_mutex;
std::size_t global_requested_threads = 0;
bool global_pool_created = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
    : counters_(num_threads == 0 ? std::max<std::size_t>(
                                       1, std::thread::hardware_concurrency())
                                 : num_threads) {
  const std::size_t resolved = counters_.size();
  workers_.reserve(resolved);
  for (std::size_t t = 0; t < resolved; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MMLP_CHECK(!stop_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out(counters_.size());
  for (std::size_t t = 0; t < counters_.size(); ++t) {
    out[t].busy_ns = counters_[t].busy_ns.load(std::memory_order_relaxed);
    out[t].idle_ns = counters_[t].idle_ns.load(std::memory_order_relaxed);
    out[t].tasks = counters_[t].tasks.load(std::memory_order_relaxed);
  }
  return out;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  using clock = std::chrono::steady_clock;
  WorkerCounters& counters = counters_[worker_index];
  auto elapsed_ns = [](clock::time_point since) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             since)
            .count());
  };
  while (true) {
    std::function<void()> task;
    {
      const clock::time_point wait_start = clock::now();
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      counters.idle_ns.fetch_add(elapsed_ns(wait_start),
                                 std::memory_order_relaxed);
      if (stop_ && queue_.empty()) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    tls_inside_worker = true;
    const clock::time_point task_start = clock::now();
    task();
    counters.busy_ns.fetch_add(elapsed_ns(task_start),
                               std::memory_order_relaxed);
    counters.tasks.fetch_add(1, std::memory_order_relaxed);
    tls_inside_worker = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool& pool = []() -> ThreadPool& {
    std::lock_guard<std::mutex> lock(global_config_mutex);
    static ThreadPool instance(global_requested_threads);
    global_pool_created = true;
    return instance;
  }();
  return pool;
}

void set_global_thread_count(std::size_t num_threads) {
  std::lock_guard<std::mutex> lock(global_config_mutex);
  if (global_pool_created) {
    const std::size_t resolved =
        num_threads == 0
            ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
            : num_threads;
    MMLP_CHECK_MSG(ThreadPool::global().size() == resolved,
                   "global thread pool already created with "
                       << ThreadPool::global().size()
                       << " workers; cannot resize to " << resolved);
    return;
  }
  global_requested_threads = num_threads;
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool, std::size_t grain) {
  if (count == 0) {
    return;
  }
  if (tls_inside_worker) {
    serial_for(count, fn);
    return;
  }
  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }
  const std::size_t threads = pool->size();
  if (threads <= 1 || count == 1) {
    serial_for(count, fn);
    return;
  }
  if (grain == 0) {
    // Aim for ~4 chunks per worker so stragglers rebalance.
    grain = std::max<std::size_t>(1, count / (threads * 4));
  }
  // Chunks pull from a shared atomic cursor; each chunk touches a
  // disjoint index range so no other synchronisation is needed. Pool
  // tasks must not throw, so exceptions from fn are trapped here: the
  // first one is kept, remaining chunks are abandoned, and the caller
  // rethrows after the pool drains (matching the serial paths above).
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  auto failed = std::make_shared<std::atomic<bool>>(false);
  auto first_error = std::make_shared<std::exception_ptr>();
  const std::size_t num_chunks = (count + grain - 1) / grain;
  const std::size_t launches = std::min(threads, num_chunks);
  for (std::size_t t = 0; t < launches; ++t) {
    pool->submit([cursor, count, grain, &fn, failed, first_error] {
      while (!failed->load(std::memory_order_relaxed)) {
        const std::size_t begin = cursor->fetch_add(grain);
        if (begin >= count) {
          return;
        }
        const std::size_t end = std::min(count, begin + grain);
        try {
          for (std::size_t i = begin; i < end; ++i) {
            fn(i);
          }
        } catch (...) {
          if (!failed->exchange(true)) {
            *first_error = std::current_exception();
          }
          return;
        }
      }
    });
  }
  pool->wait_idle();
  if (failed->load() && *first_error != nullptr) {
    std::rethrow_exception(*first_error);
  }
}

void serial_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < count; ++i) {
    fn(i);
  }
}

}  // namespace mmlp

// d-dimensional lattice instances (the Theorem 3 illustration): every
// cell hosts a resource over its closed von-Neumann neighbourhood (the
// cell plus its 2d axis neighbours, a_iv = 1 or U[0.5, 1.5] when
// randomized), and each party_stride-th cell a party with the same
// support, giving |V_i| = |V_k| = 2d + 1 in the torus case and the
// growth bound γ(r) = 1 + Θ(1/r) that makes local averaging a
// (1 + O(1/R))²-approximation on this family.
#include "mmlp/gen/grid.hpp"

#include <algorithm>

#include "mmlp/util/check.hpp"

namespace mmlp {

std::int64_t grid_cell_index(const std::vector<std::int32_t>& dims,
                             const std::vector<std::int32_t>& coords) {
  MMLP_CHECK_EQ(dims.size(), coords.size());
  std::int64_t index = 0;
  for (std::size_t axis = 0; axis < dims.size(); ++axis) {
    MMLP_CHECK_GE(coords[axis], 0);
    MMLP_CHECK_LT(coords[axis], dims[axis]);
    index = index * dims[axis] + coords[axis];
  }
  return index;
}

std::vector<std::int32_t> grid_cell_coords(const std::vector<std::int32_t>& dims,
                                           std::int64_t index) {
  std::vector<std::int32_t> coords(dims.size(), 0);
  for (std::size_t axis = dims.size(); axis-- > 0;) {
    coords[axis] = static_cast<std::int32_t>(index % dims[axis]);
    index /= dims[axis];
  }
  MMLP_CHECK_EQ(index, 0);
  return coords;
}

Instance make_grid_instance(const GridOptions& options) {
  MMLP_CHECK(!options.dims.empty());
  MMLP_CHECK_GE(options.party_stride, 1);
  std::int64_t num_cells = 1;
  for (const std::int32_t extent : options.dims) {
    MMLP_CHECK_GE(extent, 1);
    num_cells *= extent;
  }
  MMLP_CHECK_LE(num_cells, std::int64_t{1} << 26);

  Rng rng(options.seed);
  auto coefficient = [&]() {
    return options.randomize ? rng.uniform(0.5, 1.5) : 1.0;
  };

  // Closed neighbourhood of a cell.
  auto neighborhood = [&](std::int64_t cell) {
    std::vector<AgentId> members{static_cast<AgentId>(cell)};
    const auto coords = grid_cell_coords(options.dims, cell);
    for (std::size_t axis = 0; axis < options.dims.size(); ++axis) {
      const std::int32_t extent = options.dims[axis];
      if (extent == 1) {
        continue;
      }
      for (const std::int32_t step : {-1, +1}) {
        auto shifted = coords;
        shifted[axis] += step;
        if (options.torus) {
          shifted[axis] = (shifted[axis] + extent) % extent;
        } else if (shifted[axis] < 0 || shifted[axis] >= extent) {
          continue;
        }
        const auto neighbor =
            static_cast<AgentId>(grid_cell_index(options.dims, shifted));
        if (neighbor != static_cast<AgentId>(cell)) {
          members.push_back(neighbor);
        }
      }
    }
    // A size-2 torus axis makes -1 and +1 the same cell; dedupe.
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    return members;
  };

  Instance::Builder builder;
  builder.reserve(static_cast<AgentId>(num_cells), 0, 0);
  for (std::int64_t cell = 0; cell < num_cells; ++cell) {
    const ResourceId i = builder.add_resource();
    for (const AgentId member : neighborhood(cell)) {
      builder.set_usage(i, member, coefficient());
    }
  }
  for (std::int64_t cell = 0; cell < num_cells; cell += options.party_stride) {
    const PartyId k = builder.add_party();
    for (const AgentId member : neighborhood(cell)) {
      builder.set_benefit(k, member, coefficient());
    }
  }
  return std::move(builder).build();
}

}  // namespace mmlp

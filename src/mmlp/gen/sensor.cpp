// The Section 2 sensor-network application as a generator: sensors and
// relays are planar points; agent v = (sensor s, relay t) is a wireless
// link whose unit of transmitted data costs a_sv of s's battery and
// a_tv of t's battery (both resources of eq. (1)); each monitored area
// k is a party with c_kv = 1 for every link whose sensor observes the
// area. Maximising min_k Σ c_kv x_v is then the lifetime-fair data
// collection rate across areas.
#include "mmlp/gen/sensor.hpp"

#include <algorithm>
#include <cmath>

#include "mmlp/util/check.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {

namespace {

double squared_distance(const std::pair<double, double>& a,
                        const std::pair<double, double>& b) {
  const double dx = a.first - b.first;
  const double dy = a.second - b.second;
  return dx * dx + dy * dy;
}

}  // namespace

SensorNetwork make_sensor_network(const SensorNetworkOptions& options) {
  MMLP_CHECK_GT(options.num_sensors, 0);
  MMLP_CHECK_GT(options.num_relays, 0);
  MMLP_CHECK_GT(options.num_areas, 0);
  MMLP_CHECK_GT(options.radio_range, 0.0);
  MMLP_CHECK_GT(options.max_links_per_sensor, 0);

  Rng rng(options.seed);
  for (int placement_attempt = 0; placement_attempt < 64; ++placement_attempt) {
    SensorNetwork net;
    for (std::int32_t s = 0; s < options.num_sensors; ++s) {
      net.sensor_pos.emplace_back(rng.uniform01(), rng.uniform01());
    }
    for (std::int32_t t = 0; t < options.num_relays; ++t) {
      net.relay_pos.emplace_back(rng.uniform01(), rng.uniform01());
    }
    // Areas on a jittered sub-grid so coverage is spatially spread.
    const auto side = static_cast<std::int32_t>(
        std::ceil(std::sqrt(static_cast<double>(options.num_areas))));
    for (std::int32_t k = 0; k < options.num_areas; ++k) {
      const double cx = (0.5 + static_cast<double>(k % side)) / side;
      const double cy = (0.5 + static_cast<double>(k / side)) / side;
      net.area_pos.emplace_back(cx + rng.uniform(-0.1, 0.1),
                                cy + rng.uniform(-0.1, 0.1));
    }

    // Links: each sensor keeps its max_links_per_sensor nearest in-range
    // relays. This bounds |V_i| for sensor resources by that constant and
    // keeps the degree bounds of Section 1.2 honest.
    const double range2 = options.radio_range * options.radio_range;
    for (std::int32_t s = 0; s < options.num_sensors; ++s) {
      std::vector<std::pair<double, std::int32_t>> candidates;
      for (std::int32_t t = 0; t < options.num_relays; ++t) {
        const double d2 = squared_distance(net.sensor_pos[static_cast<std::size_t>(s)],
                                           net.relay_pos[static_cast<std::size_t>(t)]);
        if (d2 <= range2) {
          candidates.emplace_back(d2, t);
        }
      }
      std::sort(candidates.begin(), candidates.end());
      const auto keep = std::min<std::size_t>(
          candidates.size(), static_cast<std::size_t>(options.max_links_per_sensor));
      for (std::size_t c = 0; c < keep; ++c) {
        net.links.emplace_back(s, candidates[c].second);
      }
    }
    if (net.links.empty()) {
      continue;  // resample geometry
    }

    // Observation sets: which links benefit which areas.
    const double sense2 = options.sensing_range * options.sensing_range;
    std::vector<std::vector<AgentId>> area_links(
        static_cast<std::size_t>(options.num_areas));
    for (std::size_t v = 0; v < net.links.size(); ++v) {
      const std::int32_t s = net.links[v].first;
      for (std::int32_t k = 0; k < options.num_areas; ++k) {
        if (squared_distance(net.sensor_pos[static_cast<std::size_t>(s)],
                             net.area_pos[static_cast<std::size_t>(k)]) <= sense2) {
          area_links[static_cast<std::size_t>(k)].push_back(
              static_cast<AgentId>(v));
        }
      }
    }
    const bool any_area_covered =
        std::any_of(area_links.begin(), area_links.end(),
                    [](const auto& list) { return !list.empty(); });
    if (!any_area_covered) {
      continue;  // resample geometry
    }

    // Assemble the instance. Every link is an agent; sensors and relays
    // that carry at least one link become resources; covered areas become
    // parties.
    Instance::Builder builder;
    net.sensor_resource.assign(static_cast<std::size_t>(options.num_sensors), -1);
    net.relay_resource.assign(static_cast<std::size_t>(options.num_relays), -1);
    net.area_party.assign(static_cast<std::size_t>(options.num_areas), -1);

    for (std::size_t v = 0; v < net.links.size(); ++v) {
      const AgentId agent = builder.add_agent();
      MMLP_CHECK_EQ(agent, static_cast<AgentId>(v));
    }
    for (std::size_t v = 0; v < net.links.size(); ++v) {
      const auto [s, t] = net.links[v];
      auto& sensor_res = net.sensor_resource[static_cast<std::size_t>(s)];
      if (sensor_res < 0) {
        sensor_res = builder.add_resource();
      }
      auto& relay_res = net.relay_resource[static_cast<std::size_t>(t)];
      if (relay_res < 0) {
        relay_res = builder.add_resource();
      }
      // Energy model: the sensor pays a base transmit cost plus a
      // distance-dependent amplifier term; the relay pays a flat
      // forwarding cost. Coefficients are fractions of the battery.
      const double d2 = squared_distance(net.sensor_pos[static_cast<std::size_t>(s)],
                                         net.relay_pos[static_cast<std::size_t>(t)]);
      const double sensor_energy =
          options.transmit_cost + options.distance_cost * d2;
      builder.set_usage(sensor_res, static_cast<AgentId>(v), sensor_energy);
      builder.set_usage(relay_res, static_cast<AgentId>(v), options.relay_cost);
    }
    for (std::int32_t k = 0; k < options.num_areas; ++k) {
      const auto& list = area_links[static_cast<std::size_t>(k)];
      if (list.empty()) {
        continue;
      }
      const PartyId party = builder.add_party();
      net.area_party[static_cast<std::size_t>(k)] = party;
      for (const AgentId v : list) {
        builder.set_benefit(party, v, 1.0);
      }
    }

    net.instance = std::move(builder).build();
    return net;
  }
  MMLP_CHECK_MSG(false, "sensor network generation failed; parameters leave "
                        "the network disconnected (increase ranges)");
}

}  // namespace mmlp

// Random geometric instances (Section 5's motivation).
//
// "If nodes are embedded in a low-dimensional physical space, the length
// of each communication link is bounded by the limited range of the
// radio, [...] we expect that the number of nodes grows only polynomially
// as the radius r increases." This generator realises that setting:
// agents are points in [0,1]^dim; each agent hosts a resource whose
// support is itself plus its nearest in-range neighbours (capped for the
// degree bounds), and every `party_stride`-th agent hosts a party with
// the same neighbourhood shape. The resulting hypergraphs have bounded
// growth in the regime the paper targets, making them the natural
// workload for Theorem 3 beyond exact lattices.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "mmlp/core/instance.hpp"

namespace mmlp {

struct GeometricOptions {
  std::int32_t num_agents = 100;
  std::int32_t dim = 2;           ///< 1, 2 or 3
  double radius = 0.15;           ///< connection radius
  std::int32_t max_support = 5;   ///< cap on |V_i| / |V_k| (self + nearest)
  std::int32_t party_stride = 1;  ///< a party at every stride-th agent
  bool randomize = false;         ///< coefficients U[0.5, 1.5] instead of 1
  std::uint64_t seed = 1;
};

struct GeometricInstance {
  Instance instance;
  std::vector<std::vector<double>> points;  ///< agent positions (dim coords)
};

GeometricInstance make_geometric_instance(const GeometricOptions& options);

}  // namespace mmlp

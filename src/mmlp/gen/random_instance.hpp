// Random bounded-degree max-min LP instances.
//
// Workload generator for property tests and microbenchmarks: every agent
// joins `resources_per_agent` resources and `parties_per_agent` parties;
// supports are built by chunking a shuffled slot multiset, which keeps
// |V_i| ≤ max_support and |V_k| ≤ max_support, i.e. all four degree
// bounds of Section 1.2 hold by construction.
#pragma once

#include <cstdint>

#include "mmlp/core/instance.hpp"

namespace mmlp {

struct RandomInstanceOptions {
  AgentId num_agents = 100;
  std::int32_t resources_per_agent = 2;  ///< |I_v| (exact, up to dedup)
  std::int32_t parties_per_agent = 1;    ///< |K_v| (exact, up to dedup)
  std::int32_t max_support = 3;          ///< cap on |V_i| and |V_k|
  double coef_lo = 0.5;                  ///< coefficient range (uniform)
  double coef_hi = 1.5;
  std::uint64_t seed = 1;
};

Instance make_random_instance(const RandomInstanceOptions& options);

}  // namespace mmlp

// d-dimensional grid / torus instances (Theorem 3 illustration).
//
// Agents sit on the cells of a d-dimensional lattice. Every cell hosts a
// resource whose support is the closed von-Neumann neighbourhood of the
// cell (the cell plus its 2d axis neighbours), and every `party_stride`-th
// cell hosts a party with the same support. The communication hypergraph
// is then exactly the grid-with-diagonals structure whose growth is
// γ(r) = 1 + Θ(1/r), making the family the paper's canonical positive
// example: the local-averaging algorithm is an approximation *scheme*
// here.
#pragma once

#include <cstdint>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {

struct GridOptions {
  std::vector<std::int32_t> dims{8, 8};  ///< lattice extents (d = dims.size())
  bool torus = true;        ///< wrap neighbourhoods around
  bool randomize = false;   ///< coefficients U[0.5, 1.5] instead of 1
  std::int32_t party_stride = 1;  ///< a party at every stride-th cell
  std::uint64_t seed = 1;
};

Instance make_grid_instance(const GridOptions& options);

/// Row-major cell index <-> coordinates (exposed for tests/examples).
std::int64_t grid_cell_index(const std::vector<std::int32_t>& dims,
                             const std::vector<std::int32_t>& coords);
std::vector<std::int32_t> grid_cell_coords(const std::vector<std::int32_t>& dims,
                                           std::int64_t index);

}  // namespace mmlp

// The Section 4 lower-bound construction (Figure 1): one complete
// (d,D)-ary hypertree T_q of height 2R−1 per vertex q of a ∆-regular
// bipartite template graph Q with girth > 4r (∆ = d^R·D^(R−1)), leaves
// identified along the edges of Q. Locality then forces any horizon-r
// algorithm to output the same x on the two non-isomorphic gluings,
// which pins its approximation ratio to ∆_I^V(1 − 1/∆_K^V) − o(1)
// (Theorem 1; Corollary 2 for the binary case).
#include "mmlp/gen/lowerbound.hpp"

#include <algorithm>

#include "mmlp/graph/bfs.hpp"
#include "mmlp/graph/regular_bipartite.hpp"
#include "mmlp/util/check.hpp"

namespace mmlp {

namespace {

std::int64_t ipow(std::int64_t base, std::int32_t exp) {
  std::int64_t result = 1;
  for (std::int32_t e = 0; e < exp; ++e) {
    MMLP_CHECK_LT(result, std::int64_t{1} << 40);
    result *= base;
  }
  return result;
}

}  // namespace

AgentId LowerBoundInstance::agent_id(std::int32_t tree_index,
                                     std::int32_t local) const {
  MMLP_CHECK_GE(tree_index, 0);
  MMLP_CHECK_LT(tree_index, num_trees);
  MMLP_CHECK_GE(local, 0);
  MMLP_CHECK_LT(local, tree_size);
  return tree_index * tree_size + local;
}

std::int32_t LowerBoundInstance::tree_of(AgentId agent) const {
  return agent / tree_size;
}

std::int32_t LowerBoundInstance::local_of(AgentId agent) const {
  return agent % tree_size;
}

std::int32_t LowerBoundInstance::level_of(AgentId agent) const {
  return tree.level(local_of(agent));
}

std::vector<AgentId> LowerBoundInstance::leaves_of(std::int32_t tree_index) const {
  std::vector<AgentId> result;
  result.reserve(tree.leaves().size());
  for (const std::int32_t local : tree.leaves()) {
    result.push_back(agent_id(tree_index, local));
  }
  return result;
}

LowerBoundInstance build_lower_bound_instance(const LowerBoundParams& params) {
  MMLP_CHECK_GE(params.d, 1);
  MMLP_CHECK_GE(params.D, 1);
  MMLP_CHECK_MSG(params.d * params.D > 1,
                 "dD > 1 required (d = D = 1 has no content)");
  MMLP_CHECK_GE(params.r, 1);
  MMLP_CHECK_GT(params.R, params.r);

  LowerBoundInstance lb;
  lb.params = params;
  const std::int64_t degree64 =
      ipow(params.d, params.R) * ipow(params.D, params.R - 1);
  MMLP_CHECK_MSG(degree64 <= 4096, "degree d^R D^(R-1) = " << degree64
                                   << " too large to simulate");
  lb.degree = static_cast<std::int32_t>(degree64);

  // Template graph Q with girth >= 4r + 2.
  Rng rng(params.seed);
  const std::int32_t min_girth = 4 * params.r + 2;
  auto q_result = high_girth_bipartite(lb.degree, min_girth,
                                       params.q_nodes_per_side, rng);
  MMLP_CHECK_MSG(q_result.has_value(),
                 "could not sample Q (degree " << lb.degree << ", girth "
                 << min_girth << "); raise q_nodes_per_side");
  lb.q = std::move(q_result->graph);
  lb.num_trees = lb.q.num_vertices();

  // Hypertree template of height 2R − 1; leaves count must equal Δ.
  lb.tree = Hypertree::complete(params.d, params.D, 2 * params.R - 1);
  lb.tree_size = lb.tree.num_nodes();
  MMLP_CHECK_EQ(static_cast<std::int64_t>(lb.tree.leaves().size()), degree64);

  const std::int64_t total_agents =
      static_cast<std::int64_t>(lb.num_trees) * lb.tree_size;
  MMLP_CHECK_MSG(total_agents <= (std::int64_t{1} << 24),
                 "instance would have " << total_agents << " agents");

  Instance::Builder builder;
  builder.reserve(static_cast<AgentId>(total_agents), 0, 0);

  // Type I and II hyperedges: one resource/party per tree edge per copy.
  for (std::int32_t t = 0; t < lb.num_trees; ++t) {
    for (const HypertreeEdge& edge : lb.tree.edges()) {
      if (edge.type == HyperedgeType::kTypeI) {
        const ResourceId i = builder.add_resource();
        builder.set_usage(i, lb.agent_id(t, edge.parent), 1.0);
        for (const std::int32_t child : edge.children) {
          builder.set_usage(i, lb.agent_id(t, child), 1.0);
        }
      } else {
        const PartyId k = builder.add_party();
        const double c = 1.0 / static_cast<double>(params.D);
        builder.set_benefit(k, lb.agent_id(t, edge.parent), c);
        for (const std::int32_t child : edge.children) {
          builder.set_benefit(k, lb.agent_id(t, child), c);
        }
      }
    }
  }

  // Leaf pairing f via the edges of Q: the j-th leaf of T_q is associated
  // with the j-th neighbour of q (sorted order), and the two leaves of an
  // edge {q, w} form a type III party.
  lb.pairing.resize(static_cast<std::size_t>(total_agents));
  for (AgentId v = 0; v < static_cast<AgentId>(total_agents); ++v) {
    lb.pairing[static_cast<std::size_t>(v)] = v;  // identity off the leaves
  }
  std::vector<std::vector<std::int32_t>> sorted_adj(
      static_cast<std::size_t>(lb.num_trees));
  for (std::int32_t qv = 0; qv < lb.num_trees; ++qv) {
    sorted_adj[static_cast<std::size_t>(qv)] = lb.q.neighbors(qv);
    auto& adj = sorted_adj[static_cast<std::size_t>(qv)];
    std::sort(adj.begin(), adj.end());
    MMLP_CHECK_EQ(adj.size(), static_cast<std::size_t>(lb.degree));
  }
  for (std::int32_t qv = 0; qv < lb.num_trees; ++qv) {
    const auto leaves_q = lb.leaves_of(qv);
    for (std::size_t slot = 0; slot < leaves_q.size(); ++slot) {
      const std::int32_t w = sorted_adj[static_cast<std::size_t>(qv)][slot];
      // Slot of q in w's adjacency.
      const auto& adj_w = sorted_adj[static_cast<std::size_t>(w)];
      const auto it = std::lower_bound(adj_w.begin(), adj_w.end(), qv);
      MMLP_CHECK(it != adj_w.end() && *it == qv);
      const auto back_slot = static_cast<std::size_t>(it - adj_w.begin());
      const AgentId leaf = leaves_q[slot];
      const AgentId partner = lb.leaves_of(w)[back_slot];
      lb.pairing[static_cast<std::size_t>(leaf)] = partner;
      if (leaf < partner) {  // add each type III party once
        const PartyId k = builder.add_party();
        builder.set_benefit(k, leaf, 1.0);
        builder.set_benefit(k, partner, 1.0);
      }
    }
  }

  lb.instance = std::move(builder).build();

  // Paper invariants: Δ_V^I = Δ_V^K = 1, |V_i| = d+1, |V_k| ≤ D+1.
  const DegreeBounds bounds = lb.instance.degree_bounds();
  MMLP_CHECK_EQ(bounds.delta_I_of_V, 1u);
  MMLP_CHECK_EQ(bounds.delta_K_of_V, 1u);
  MMLP_CHECK_EQ(bounds.delta_V_of_I, static_cast<std::size_t>(params.d) + 1);
  MMLP_CHECK_LE(bounds.delta_V_of_K, static_cast<std::size_t>(params.D) + 1);
  return lb;
}

std::vector<double> compute_delta(const LowerBoundInstance& lb,
                                  const std::vector<double>& x) {
  MMLP_CHECK_EQ(x.size(), static_cast<std::size_t>(lb.instance.num_agents()));
  std::vector<double> delta(static_cast<std::size_t>(lb.num_trees), 0.0);
  for (std::int32_t qv = 0; qv < lb.num_trees; ++qv) {
    double sum = 0.0;
    for (const AgentId leaf : lb.leaves_of(qv)) {
      sum += x[static_cast<std::size_t>(leaf)] -
             x[static_cast<std::size_t>(lb.pairing[static_cast<std::size_t>(leaf)])];
    }
    delta[static_cast<std::size_t>(qv)] = sum;
  }
  return delta;
}

std::int32_t select_p(const std::vector<double>& delta) {
  MMLP_CHECK(!delta.empty());
  const auto it = std::max_element(delta.begin(), delta.end());
  MMLP_CHECK_GE(*it, -1e-9);  // Σ δ(q) = 0, so the max is nonnegative
  return static_cast<std::int32_t>(it - delta.begin());
}

std::int32_t SubInstance::local_agent(AgentId global) const {
  const auto it =
      std::lower_bound(global_agents.begin(), global_agents.end(), global);
  if (it != global_agents.end() && *it == global) {
    return static_cast<std::int32_t>(it - global_agents.begin());
  }
  return -1;
}

SubInstance build_s_prime(const LowerBoundInstance& lb, std::int32_t p) {
  MMLP_CHECK_GE(p, 0);
  MMLP_CHECK_LT(p, lb.num_trees);
  const Hypergraph h = lb.instance.communication_graph(false);

  // V′ = T_p ∪ ∪_{u∈L_p} B_H(u, 2r).
  std::vector<AgentId> members;
  for (std::int32_t local = 0; local < lb.tree_size; ++local) {
    members.push_back(lb.agent_id(p, local));
  }
  for (const AgentId leaf : lb.leaves_of(p)) {
    const auto around = ball(h, leaf, 2 * lb.params.r);
    members.insert(members.end(), around.begin(), around.end());
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());

  SubInstance sub;
  sub.global_agents = members;

  auto in_v_prime = [&](AgentId v) {
    return std::binary_search(members.begin(), members.end(), v);
  };

  // Candidate hyperedges are those touching V′; keep the fully contained.
  std::vector<ResourceId> resource_candidates;
  std::vector<PartyId> party_candidates;
  for (const AgentId v : members) {
    for (const Coef& entry : lb.instance.agent_resources(v)) {
      resource_candidates.push_back(entry.id);
    }
    for (const Coef& entry : lb.instance.agent_parties(v)) {
      party_candidates.push_back(entry.id);
    }
  }
  std::sort(resource_candidates.begin(), resource_candidates.end());
  resource_candidates.erase(
      std::unique(resource_candidates.begin(), resource_candidates.end()),
      resource_candidates.end());
  std::sort(party_candidates.begin(), party_candidates.end());
  party_candidates.erase(
      std::unique(party_candidates.begin(), party_candidates.end()),
      party_candidates.end());

  Instance::Builder builder;
  builder.reserve(static_cast<AgentId>(members.size()), 0, 0);
  for (const ResourceId i : resource_candidates) {
    const auto& support = lb.instance.resource_support(i);
    const bool contained =
        std::all_of(support.begin(), support.end(),
                    [&](const Coef& entry) { return in_v_prime(entry.id); });
    if (!contained) {
      continue;
    }
    const ResourceId local_i = builder.add_resource();
    sub.global_resources.push_back(i);
    for (const Coef& entry : support) {
      builder.set_usage(local_i, sub.local_agent(entry.id), entry.value);
    }
  }
  for (const PartyId k : party_candidates) {
    const auto& support = lb.instance.party_support(k);
    const bool contained =
        std::all_of(support.begin(), support.end(),
                    [&](const Coef& entry) { return in_v_prime(entry.id); });
    if (!contained) {
      continue;
    }
    const PartyId local_k = builder.add_party();
    sub.global_parties.push_back(k);
    for (const Coef& entry : support) {
      builder.set_benefit(local_k, sub.local_agent(entry.id), entry.value);
    }
  }
  sub.instance = std::move(builder).build();
  MMLP_CHECK_EQ(sub.instance.num_agents(),
                static_cast<AgentId>(members.size()));

  sub.root_local = sub.local_agent(lb.agent_id(p, 0));
  MMLP_CHECK_GE(sub.root_local, 0);
  sub.tp_local.reserve(static_cast<std::size_t>(lb.tree_size));
  for (std::int32_t local = 0; local < lb.tree_size; ++local) {
    const std::int32_t mapped = sub.local_agent(lb.agent_id(p, local));
    MMLP_CHECK_GE(mapped, 0);
    sub.tp_local.push_back(mapped);
  }
  return sub;
}

std::vector<double> alternating_solution(const SubInstance& sub) {
  const Hypergraph h = sub.instance.communication_graph(false);
  const auto dist = bfs_distances(h, sub.root_local);
  std::vector<double> x(dist.size(), 0.0);
  for (std::size_t v = 0; v < dist.size(); ++v) {
    MMLP_CHECK_MSG(dist[v] >= 0, "S' is connected by construction");
    if (dist[v] % 2 == 0) {
      x[v] = 1.0;
    }
  }
  return x;
}

double theorem1_bound(std::int32_t d, std::int32_t D) {
  return static_cast<double>(d) / 2.0 + 1.0 -
         1.0 / (2.0 * static_cast<double>(D));
}

double theorem1_bound_finite(std::int32_t d, std::int32_t D, std::int32_t R) {
  const double dd = d;
  const double DD = D;
  const double tail =
      (dd + 2.0 - 2.0 * dd * DD - 1.0 / DD) /
      (2.0 * static_cast<double>(ipow(d, R)) * static_cast<double>(ipow(D, R)) -
       2.0);
  return theorem1_bound(d, D) + tail;
}

}  // namespace mmlp

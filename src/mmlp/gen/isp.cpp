// The Section 2 ISP fair-share application as a generator: agent v is a
// (last-mile link l, router t) path, consuming a_lv = 1/cap(l) of the
// customer's link resource and a_tv = 1/cap(t) of the router resource
// per unit of traffic; customer k is a party with c_kv = 1 over its
// paths. The max-min objective ω of eq. (1) is then exactly the fair
// share: the bandwidth every customer is guaranteed simultaneously.
#include "mmlp/gen/isp.hpp"

#include "mmlp/util/check.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {

IspNetwork make_isp_network(const IspOptions& options) {
  MMLP_CHECK_GT(options.num_customers, 0);
  MMLP_CHECK_GT(options.links_per_customer, 0);
  MMLP_CHECK_GT(options.num_routers, 0);
  MMLP_CHECK_GT(options.routers_per_link, 0);
  MMLP_CHECK_LE(options.routers_per_link, options.num_routers);
  MMLP_CHECK_GE(options.capacity_spread, 0.0);
  MMLP_CHECK_LT(options.capacity_spread, 1.0);

  Rng rng(options.seed);
  IspNetwork net;
  net.num_links = options.num_customers * options.links_per_customer;

  auto jitter = [&](double base) {
    return base * (1.0 + rng.uniform(-options.capacity_spread,
                                     options.capacity_spread));
  };
  for (std::int32_t l = 0; l < net.num_links; ++l) {
    net.link_capacity.push_back(jitter(options.link_capacity));
  }
  for (std::int32_t t = 0; t < options.num_routers; ++t) {
    net.router_capacity.push_back(jitter(options.router_capacity));
  }

  // Paths first: each last-mile link connects to routers_per_link
  // distinct routers chosen uniformly. Resources are then created for
  // every link and for the routers that actually carry a path (an
  // untouched router would be an empty resource, which the standing
  // assumptions forbid).
  for (std::int32_t c = 0; c < options.num_customers; ++c) {
    for (std::int32_t lc = 0; lc < options.links_per_customer; ++lc) {
      const std::int32_t l = c * options.links_per_customer + lc;
      const auto routers = rng.sample_without_replacement(
          options.num_routers, options.routers_per_link);
      for (const std::int32_t t : routers) {
        net.paths.emplace_back(l, t);
      }
    }
  }

  Instance::Builder builder;
  for (std::int32_t l = 0; l < net.num_links; ++l) {
    const ResourceId id = builder.add_resource();
    MMLP_CHECK_EQ(id, l);
  }
  net.router_resource.assign(static_cast<std::size_t>(options.num_routers), -1);
  for (const auto& [l, t] : net.paths) {
    auto& id = net.router_resource[static_cast<std::size_t>(t)];
    if (id < 0) {
      id = builder.add_resource();
    }
  }
  for (std::int32_t c = 0; c < options.num_customers; ++c) {
    const PartyId id = builder.add_party();
    MMLP_CHECK_EQ(id, c);
  }

  for (const auto& [l, t] : net.paths) {
    const AgentId v = builder.add_agent();
    builder.set_usage(l, v, 1.0 / net.link_capacity[static_cast<std::size_t>(l)]);
    builder.set_usage(net.router_resource[static_cast<std::size_t>(t)], v,
                      1.0 / net.router_capacity[static_cast<std::size_t>(t)]);
    builder.set_benefit(l / options.links_per_customer, v, 1.0);
  }

  net.instance = std::move(builder).build();
  return net;
}

}  // namespace mmlp

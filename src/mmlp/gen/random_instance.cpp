// Random bounded-degree workload generator: each agent draws
// `resources_per_agent` resource slots and `parties_per_agent` party
// slots; the shuffled slot multiset is chunked into supports of size
// ≤ max_support, so every instance satisfies the Section 1.2 standing
// assumptions (I_v, V_i, V_k nonempty) and all four degree bounds by
// construction. Coefficients are U[coef_lo, coef_hi] from the portable
// Rng, making runs reproducible across platforms.
#include "mmlp/gen/random_instance.hpp"

#include <algorithm>

#include "mmlp/util/check.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {

namespace {

/// Chunk a shuffled multiset of agent slots into supports of size
/// <= max_support, deduplicating agents within each chunk.
std::vector<std::vector<AgentId>> chunk_slots(std::vector<AgentId> slots,
                                              std::int32_t max_support,
                                              Rng& rng) {
  rng.shuffle(slots);
  std::vector<std::vector<AgentId>> supports;
  std::vector<AgentId> current;
  for (const AgentId v : slots) {
    if (std::find(current.begin(), current.end(), v) != current.end()) {
      // Duplicate within the chunk: flush early so v lands in a new one.
      supports.push_back(current);
      current.clear();
    }
    current.push_back(v);
    if (current.size() == static_cast<std::size_t>(max_support)) {
      supports.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) {
    supports.push_back(current);
  }
  return supports;
}

}  // namespace

Instance make_random_instance(const RandomInstanceOptions& options) {
  MMLP_CHECK_GT(options.num_agents, 0);
  MMLP_CHECK_GE(options.resources_per_agent, 1);  // I_v must be nonempty
  MMLP_CHECK_GE(options.parties_per_agent, 0);
  MMLP_CHECK_GE(options.max_support, 1);
  MMLP_CHECK_GT(options.coef_lo, 0.0);
  MMLP_CHECK_LE(options.coef_lo, options.coef_hi);

  Rng rng(options.seed);
  auto coefficient = [&]() { return rng.uniform(options.coef_lo, options.coef_hi); };

  std::vector<AgentId> resource_slots;
  for (AgentId v = 0; v < options.num_agents; ++v) {
    for (std::int32_t rep = 0; rep < options.resources_per_agent; ++rep) {
      resource_slots.push_back(v);
    }
  }
  std::vector<AgentId> party_slots;
  for (AgentId v = 0; v < options.num_agents; ++v) {
    for (std::int32_t rep = 0; rep < options.parties_per_agent; ++rep) {
      party_slots.push_back(v);
    }
  }

  Instance::Builder builder;
  builder.reserve(options.num_agents, 0, 0);
  for (const auto& support : chunk_slots(std::move(resource_slots),
                                         options.max_support, rng)) {
    const ResourceId i = builder.add_resource();
    for (const AgentId v : support) {
      builder.set_usage(i, v, coefficient());
    }
  }
  for (const auto& support :
       chunk_slots(std::move(party_slots), options.max_support, rng)) {
    const PartyId k = builder.add_party();
    for (const AgentId v : support) {
      builder.set_benefit(k, v, coefficient());
    }
  }
  return std::move(builder).build();
}

}  // namespace mmlp

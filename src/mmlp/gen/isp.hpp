// ISP fair-share instances (Section 2, second application).
//
// Each beneficiary party k is a major customer of an Internet service
// provider; each resource is either a bounded-capacity last-mile link
// between one customer and the ISP, or a bounded-capacity access router
// in the ISP's network. An agent v is a (last-mile link, router) path;
// routing one unit of traffic over v consumes 1/capacity of both the
// link and the router. The max-min objective is the fair share: the
// worst-served customer's total throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "mmlp/core/instance.hpp"

namespace mmlp {

struct IspOptions {
  std::int32_t num_customers = 16;
  std::int32_t links_per_customer = 2;  ///< last-mile links per customer
  std::int32_t num_routers = 8;
  std::int32_t routers_per_link = 2;    ///< routers reachable from each link
  double link_capacity = 1.0;           ///< base last-mile capacity
  double router_capacity = 4.0;         ///< base router capacity
  double capacity_spread = 0.5;         ///< ±relative random variation
  std::uint64_t seed = 1;
};

struct IspNetwork {
  Instance instance;
  /// Agent v routes over last-mile link paths[v].first (a global last-mile
  /// index in [0, num_customers*links_per_customer)) and router
  /// paths[v].second.
  std::vector<std::pair<std::int32_t, std::int32_t>> paths;
  std::vector<double> link_capacity;    ///< per last-mile link
  std::vector<double> router_capacity;  ///< per router
  /// Resource ids: last-mile link l -> resource l; router t ->
  /// router_resource[t] (−1 when no path was routed through t);
  /// customer c -> party c.
  std::vector<ResourceId> router_resource;
  std::int32_t num_links = 0;
};

IspNetwork make_isp_network(const IspOptions& options);

}  // namespace mmlp

// Two-tier sensor network instances (Section 2).
//
// Battery-powered sensors generate data about physical areas; the data
// flows over a wireless link to a battery-powered relay, which forwards
// it to the sink. An agent is a wireless link v = (s, t); transmitting a
// unit of data on v consumes a fraction a_sv of sensor s's energy and
// a_tv of relay t's energy. Every monitored area k is a beneficiary
// party with c_kv = 1 for each link whose sensor can observe the area.
// The max-min objective is then the network lifetime: the time until the
// first battery dies, given equal average rates from every area.
//
// Geometry is synthetic (uniform placement in the unit square): the
// paper's application defines only the induced hypergraph and the energy
// coefficients, which this generator reproduces exactly.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "mmlp/core/instance.hpp"

namespace mmlp {

struct SensorNetworkOptions {
  std::int32_t num_sensors = 64;
  std::int32_t num_relays = 16;
  std::int32_t num_areas = 9;        ///< monitored areas, on a coarse sub-grid
  double radio_range = 0.25;         ///< max sensor-relay link length
  double sensing_range = 0.35;       ///< max sensor-area observation distance
  std::int32_t max_links_per_sensor = 3;  ///< keep only this many nearest relays
  double transmit_cost = 1.0;        ///< sensor energy per unit data at range 0
  double distance_cost = 2.0;        ///< extra sensor energy ∝ (link length)^2
  double relay_cost = 0.6;           ///< relay energy per unit forwarded
  std::uint64_t seed = 1;
};

/// The instance plus the geometric metadata that produced it.
struct SensorNetwork {
  Instance instance;

  std::vector<std::pair<double, double>> sensor_pos;
  std::vector<std::pair<double, double>> relay_pos;
  std::vector<std::pair<double, double>> area_pos;

  /// Agent v = links[v] = (sensor index, relay index).
  std::vector<std::pair<std::int32_t, std::int32_t>> links;
  /// Resource id of each sensor / relay (−1 when it ended up unused).
  std::vector<ResourceId> sensor_resource;
  std::vector<ResourceId> relay_resource;
  /// Party id of each area (−1 when no surviving sensor observes it).
  std::vector<PartyId> area_party;
};

/// Generate a network. Sensors without reachable relays, relays without
/// links, and areas without observers are dropped (and reported via the
/// −1 markers), so the returned instance always satisfies the standing
/// assumptions. Retries placement a few times if every area would be
/// dropped.
SensorNetwork make_sensor_network(const SensorNetworkOptions& options);

}  // namespace mmlp

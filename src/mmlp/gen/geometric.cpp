// Sampling the Section 5 bounded-growth setting: agents are uniform
// points in [0,1]^dim, each hosting one resource (and one party per
// `party_stride`-th agent) whose support is itself plus its nearest
// in-range neighbours, capped at `max_support` — so all four degree
// bounds Δ_V^I, Δ_V^K, Δ_I^V, Δ_K^V of Section 1.2 hold by construction
// and the communication graph inherits the polynomial ball growth the
// paper expects of physically embedded networks.
#include "mmlp/gen/geometric.hpp"

#include <algorithm>
#include <cmath>

#include "mmlp/util/check.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {

GeometricInstance make_geometric_instance(const GeometricOptions& options) {
  MMLP_CHECK_GT(options.num_agents, 0);
  MMLP_CHECK_GE(options.dim, 1);
  MMLP_CHECK_LE(options.dim, 3);
  MMLP_CHECK_GT(options.radius, 0.0);
  MMLP_CHECK_GE(options.max_support, 1);
  MMLP_CHECK_GE(options.party_stride, 1);

  Rng rng(options.seed);
  GeometricInstance result;
  result.points.reserve(static_cast<std::size_t>(options.num_agents));
  for (std::int32_t v = 0; v < options.num_agents; ++v) {
    std::vector<double> point(static_cast<std::size_t>(options.dim));
    for (double& coord : point) {
      coord = rng.uniform01();
    }
    result.points.push_back(std::move(point));
  }

  auto squared_distance = [&](std::int32_t a, std::int32_t b) {
    double total = 0.0;
    for (std::int32_t axis = 0; axis < options.dim; ++axis) {
      const double diff =
          result.points[static_cast<std::size_t>(a)][static_cast<std::size_t>(axis)] -
          result.points[static_cast<std::size_t>(b)][static_cast<std::size_t>(axis)];
      total += diff * diff;
    }
    return total;
  };

  // Neighbourhood of v: itself plus its (max_support − 1) nearest
  // in-range agents. O(n²) is fine at generator scale.
  const double radius2 = options.radius * options.radius;
  auto neighborhood = [&](std::int32_t v) {
    std::vector<std::pair<double, AgentId>> in_range;
    for (std::int32_t u = 0; u < options.num_agents; ++u) {
      if (u == v) {
        continue;
      }
      const double d2 = squared_distance(v, u);
      if (d2 <= radius2) {
        in_range.emplace_back(d2, u);
      }
    }
    std::sort(in_range.begin(), in_range.end());
    std::vector<AgentId> members{v};
    const auto keep = std::min<std::size_t>(
        in_range.size(), static_cast<std::size_t>(options.max_support) - 1);
    for (std::size_t idx = 0; idx < keep; ++idx) {
      members.push_back(in_range[idx].second);
    }
    return members;
  };

  auto coefficient = [&]() {
    return options.randomize ? rng.uniform(0.5, 1.5) : 1.0;
  };

  Instance::Builder builder;
  builder.reserve(options.num_agents, 0, 0);
  for (std::int32_t v = 0; v < options.num_agents; ++v) {
    const ResourceId i = builder.add_resource();
    for (const AgentId member : neighborhood(v)) {
      builder.set_usage(i, member, coefficient());
    }
  }
  for (std::int32_t v = 0; v < options.num_agents; v += options.party_stride) {
    const PartyId k = builder.add_party();
    for (const AgentId member : neighborhood(v)) {
      builder.set_benefit(k, member, coefficient());
    }
  }
  result.instance = std::move(builder).build();
  return result;
}

}  // namespace mmlp

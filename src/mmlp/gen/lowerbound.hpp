// The Theorem 1 / Corollary 2 lower-bound construction (Section 4).
//
// Given ∆_I^V = d+1 and ∆_K^V = D+1 with dD > 1, a horizon r and a
// parameter R > r, instance S is built as follows (Figure 1):
//   * Q: a ∆-regular bipartite graph, ∆ = d^R·D^(R−1), with no cycle
//     shorter than 4r + 2;
//   * one complete (d,D)-ary hypertree T_q of height 2R−1 per vertex
//     q ∈ Q (each has exactly ∆ leaves);
//   * each leaf of T_q is associated with a distinct edge of Q incident
//     to q; the two leaves of an edge {q, w} are paired by the
//     involution f and joined by a type III hyperedge {v, f(v)};
//   * type I hyperedges become resources with a_iv = 1, type II
//     hyperedges become parties with c_kv = 1/D, type III hyperedges
//     become parties with c_kv = 1.
// Then ∆_I^V = d+1, ∆_K^V = D+1, ∆_V^I = ∆_V^K = 1 and a_iv ∈ {0,1}.
//
// S′ (Section 4.3) restricts S to V′ = T_p ∪ ∪_{u∈L_p} B_H(u, 2r) for a
// vertex p with δ(p) ≥ 0 (eq. (3)); S′ is tree-like, admits the
// alternating solution x̂ with ω = 1 (Section 4.5), and the radius-r
// views of all agents of T_p are identical in S and S′ — which forces
// any horizon-r deterministic algorithm to repeat its S-choices on S′.
#pragma once

#include <cstdint>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/graph/hypertree.hpp"
#include "mmlp/graph/simple_graph.hpp"
#include "mmlp/util/rng.hpp"

namespace mmlp {

struct LowerBoundParams {
  std::int32_t d = 2;  ///< ∆_I^V − 1 (type I fanout)
  std::int32_t D = 2;  ///< ∆_K^V − 1 (type II fanout); D = 1 gives Corollary 2
  std::int32_t r = 1;  ///< adversary's local horizon
  std::int32_t R = 2;  ///< tree parameter; must satisfy R > r
  /// Vertices per side of Q; 0 = auto (≈ 2∆² + 8, enough slack for the
  /// girth-6 repair loop; raise it for r ≥ 2).
  std::int32_t q_nodes_per_side = 0;
  std::uint64_t seed = 1;
};

/// Instance S with full structural metadata.
struct LowerBoundInstance {
  Instance instance;  ///< S
  LowerBoundParams params;
  std::int32_t degree = 0;      ///< ∆ = d^R·D^(R−1)
  SimpleGraph q;                ///< template graph Q (2·n_side vertices)
  Hypertree tree;               ///< the (d,D)-ary hypertree template
  std::int32_t num_trees = 0;   ///< |Q|
  std::int32_t tree_size = 0;   ///< agents per copy

  /// f as a permutation of all agents (identity off the leaves).
  std::vector<AgentId> pairing;

  /// Agent id of node `local` inside copy `tree_index`.
  AgentId agent_id(std::int32_t tree_index, std::int32_t local) const;
  std::int32_t tree_of(AgentId agent) const;
  std::int32_t local_of(AgentId agent) const;
  std::int32_t level_of(AgentId agent) const;
  /// Leaves of copy `tree_index` (L_q), in leaf-slot order (slot j pairs
  /// with the j-th neighbour of q in Q's adjacency order).
  std::vector<AgentId> leaves_of(std::int32_t tree_index) const;
};

/// Build S. Fails (CheckError) if Q cannot be sampled at the requested
/// size; enlarge q_nodes_per_side in that case.
LowerBoundInstance build_lower_bound_instance(const LowerBoundParams& params);

/// δ(q) of eq. (3) for every q ∈ Q, given a solution x of S.
std::vector<double> compute_delta(const LowerBoundInstance& lb,
                                  const std::vector<double>& x);

/// An index p with δ(p) maximal (≥ 0 always exists since Σ_q δ(q) = 0).
std::int32_t select_p(const std::vector<double>& delta);

/// S′ and its embedding back into S.
struct SubInstance {
  Instance instance;                    ///< S′
  std::vector<AgentId> global_agents;   ///< local agent -> agent of S
  std::vector<ResourceId> global_resources;
  std::vector<PartyId> global_parties;
  AgentId root_local = -1;              ///< root of T_p, local id
  std::vector<AgentId> tp_local;        ///< T_p agents, local ids

  std::int32_t local_agent(AgentId global) const;  ///< −1 if absent
};

SubInstance build_s_prime(const LowerBoundInstance& lb, std::int32_t p);

/// The alternating solution x̂ of Section 4.5 (local indexing): 1 on
/// agents at even H′-distance from the root of T_p, 0 otherwise.
/// Feasible with ω = 1 by Theorem 1's proof; tests verify both.
std::vector<double> alternating_solution(const SubInstance& sub);

/// Asymptotic bound of Theorem 1: ∆_I^V/2 + 1/2 − 1/(2∆_K^V − 2)
/// = d/2 + 1 − 1/(2D).
double theorem1_bound(std::int32_t d, std::int32_t D);

/// Finite-R bound from the end of Section 4.6:
/// d/2 + 1 − 1/(2D) + (d + 2 − 2dD − 1/D)/(2·d^R·D^R − 2).
double theorem1_bound_finite(std::int32_t d, std::int32_t D, std::int32_t R);

}  // namespace mmlp

// JSONL wire format of the batch front-end (tools/mmlp_batch).
//
// Commands arrive one JSON object per line. A *solve* line is flat
// key → scalar:
//
//   {"algorithm": "averaging", "R": 2, "simplex_max_iterations": 100000}
//
// Recognised solve keys (all optional except algorithm):
//   algorithm               string   registry name
//   R                       int      view radius
//   damping                 string   beta-per-agent | beta-global | none |
//                                    none-then-scale
//   collaboration_oblivious bool
//   deduplicate             bool     one LP per view class (bitwise-equal
//                                    output; safe/averaging/dist-averaging)
//   incremental             bool     splice the dirty region of applied
//                                    updates into the previous result
//   threads                 int      must match the session pool when set
//   shards                  int      must match the serving ShardedSession
//                                    when set (mmlp_batch --shards N); a
//                                    flat session rejects values >= 2
//   seed                    int      sublinear sampling seed
//   samples                 int      sublinear sample count
//   confidence              number   sublinear Hoeffding level
//   greedy_max_steps        int
//   greedy_step_fraction    number
//   greedy_min_gain         number
//   simplex_max_iterations  int
//   trace                   bool     span tracer on for this request
//   deadline_ms             int      wall-clock budget; 0 = unlimited. An
//                                    exceeded deadline answers an error
//                                    line with code "timeout"
//   fault_plan              string   FaultPlan grammar (selfstab-* only),
//                                    e.g. "s7;0:drop:3:5;1:crash:2";
//                                    validated at parse time
//   id                      any scalar, echoed verbatim into the response
//
// An *update* line carries "op": "update" plus an InstanceDelta; the
// coefficient edits are arrays of flat objects and the removals an
// array of ints (the only nesting the grammar accepts — one level, no
// recursion):
//
//   {"op": "update", "set_usage": [{"i": 3, "v": 7, "a": 0.5}],
//    "erase_benefit": [{"k": 1, "v": 2}], "add_agents": 1,
//    "remove_agents": [4], "id": 9}
//
// Update keys: set_usage [{i,v,a}], erase_usage [{i,v}], set_benefit
// [{k,v,c}], erase_benefit [{k,v}], add_agents, add_resources,
// add_parties (ints), remove_agents ([ints]), id. A hot batch session
// interleaves updates and (incremental) solves: mmlp_batch routes
// updates through Session::apply, which repairs the caches surgically.
//
// A *stats* line — {"op": "stats", "id": 7} — takes no other keys and
// answers with the observability state of the process: the session's
// cache/scratch stats, the per-worker busy/idle/task counts of its
// thread pool, and the global obs::Registry metrics (counters, gauges,
// histogram percentiles).
//
// Unknown keys are a CheckError (typos in request streams fail loudly,
// matching the ArgParser convention). Responses are emitted one JSON
// object per line with the evaluation, diagnostics and the timing/cache
// breakdown; the solution vector rides along only when asked (emit_x) —
// at 10^5 agents it dominates the payload.
//
// Error lines carry a stable `code` field so stream consumers can
// dispatch without parsing the message text:
//   parse      the line is not in the wire grammar (malformed JSON)
//   validate   well-formed but semantically rejected (unknown key, bad
//              enum name, negative deadline, malformed fault plan, ...)
//   timeout    deadline_ms elapsed before the solve finished
//   cancelled  the solve was cancelled
//   internal   anything else (a bug — CheckError is the contract)
#pragma once

#include <cstddef>
#include <string>

#include "mmlp/engine/solver.hpp"
#include "mmlp/util/check.hpp"

namespace mmlp::engine {

/// Thrown when a wire line fails the *grammar* (scanner-level JSON
/// errors), as opposed to a well-formed line whose content is rejected
/// (plain CheckError). Subclassing CheckError keeps the long-standing
/// contract that the wire parser only ever throws CheckError; callers
/// that care about the distinction catch WireParseError first.
class WireParseError : public CheckError {
 public:
  explicit WireParseError(const std::string& what) : CheckError(what) {}
};

/// A parsed request line: the solve parameters plus the echoed id.
struct WireRequest {
  SolveRequest request;
  std::string id;  ///< raw JSON scalar text ("" when absent)
};

/// A parsed command line: a solve request, an instance update, or a
/// metrics snapshot query.
struct WireCommand {
  enum class Kind { kSolve, kUpdate, kStats };
  Kind kind = Kind::kSolve;
  SolveRequest request;  ///< kSolve
  InstanceDelta delta;   ///< kUpdate
  std::string id;        ///< raw JSON scalar text ("" when absent)
};

/// Parse one JSONL command line (solve, update, or stats). Throws
/// CheckError on malformed JSON, bad enum names, unknown keys, or solve
/// keys on an update line (and vice versa).
WireCommand parse_command_line(const std::string& line);

/// Parse one JSONL request line. Throws CheckError on malformed JSON,
/// non-scalar values, bad enum names, unknown keys — or an update line.
WireRequest parse_request_line(const std::string& line);

/// Serialise the response to an applied update (no trailing newline).
std::string apply_report_to_json_line(const Session::ApplyReport& report,
                                      const std::string& id);

/// Serialise the response to an op:"stats" query (no trailing newline):
/// session cache/scratch stats, per-worker pool stats, and the global
/// obs::Registry snapshot.
std::string stats_to_json_line(Session& session, const std::string& id);

class ShardedSession;  // engine/sharded_session.hpp

/// The sharded variant: aggregated cache/scratch stats over the shard
/// sessions plus the shard topology (shards, halo_radius, halo_agents).
std::string stats_to_json_line(ShardedSession& session, const std::string& id);

/// Serialise one response line (no trailing newline). `emit_x` includes
/// the full solution vector. Every line carries "status"; non-ok lines
/// (timeout/cancelled) add "error" and omit the solution fields.
std::string result_to_json_line(const SolveResult& result,
                                const std::string& id, bool emit_x);

/// Serialise one error line (no trailing newline):
/// {"error": <message>, "code": <code>, "line": N}. `code` must be one
/// of the stable codes documented above.
std::string error_to_json_line(const std::string& code,
                               const std::string& message,
                               std::size_t line_number);

/// Names accepted by the "damping" request key, mapped to the enum.
AveragingDamping damping_from_name(const std::string& name);
const char* to_name(AveragingDamping damping);

/// JSON string escaping (quotes, backslashes, and control characters —
/// a CheckError message with a tab in it must still serialise to a
/// parseable line). Returns the escaped body without surrounding quotes.
std::string json_escape(const std::string& text);

}  // namespace mmlp::engine

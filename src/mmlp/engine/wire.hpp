// JSONL wire format of the batch front-end (tools/mmlp_batch).
//
// Requests arrive one JSON object per line, flat key → scalar:
//
//   {"algorithm": "averaging", "R": 2, "simplex_max_iterations": 100000}
//
// Recognised keys (all optional except algorithm):
//   algorithm               string   registry name
//   R                       int      view radius
//   damping                 string   beta-per-agent | beta-global | none |
//                                    none-then-scale
//   collaboration_oblivious bool
//   deduplicate             bool     one LP per view class (bitwise-equal
//                                    output; safe/averaging/dist-averaging)
//   threads                 int      must match the session pool when set
//   seed                    int      sublinear sampling seed
//   samples                 int      sublinear sample count
//   confidence              number   sublinear Hoeffding level
//   greedy_max_steps        int
//   greedy_step_fraction    number
//   greedy_min_gain         number
//   simplex_max_iterations  int
//   id                      any scalar, echoed verbatim into the response
//
// Unknown keys are a CheckError (typos in request streams fail loudly,
// matching the ArgParser convention). Responses are emitted one JSON
// object per line with the evaluation, diagnostics and the timing/cache
// breakdown; the solution vector rides along only when asked (emit_x) —
// at 10^5 agents it dominates the payload.
#pragma once

#include <string>

#include "mmlp/engine/solver.hpp"

namespace mmlp::engine {

/// A parsed request line: the solve parameters plus the echoed id.
struct WireRequest {
  SolveRequest request;
  std::string id;  ///< raw JSON scalar text ("" when absent)
};

/// Parse one JSONL request line. Throws CheckError on malformed JSON,
/// non-scalar values, bad enum names, or unknown keys.
WireRequest parse_request_line(const std::string& line);

/// Serialise one response line (no trailing newline). `emit_x` includes
/// the full solution vector.
std::string result_to_json_line(const SolveResult& result,
                                const std::string& id, bool emit_x);

/// Names accepted by the "damping" request key, mapped to the enum.
AveragingDamping damping_from_name(const std::string& name);
const char* to_name(AveragingDamping damping);

/// JSON string escaping (quotes, backslashes, and control characters —
/// a CheckError message with a tab in it must still serialise to a
/// parseable line). Returns the escaped body without surrounding quotes.
std::string json_escape(const std::string& text);

}  // namespace mmlp::engine

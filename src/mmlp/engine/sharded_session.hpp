// engine::ShardedSession — partition/halo solving behind the Session API.
//
// A ShardedSession cuts the bound instance into S shards (shard/
// partition.hpp), materializes each as a standalone sub-Instance with a
// radius-`halo_radius` halo (shard/extract.hpp), and owns one
// engine::Session per shard. solve() fans the request out over the
// shards, stitches the per-core outputs back in global agent order, and
// re-evaluates the stitched vector against the *global* instance — so
// the returned SolveResult (x, ω, feasibility, per-party benefits) is
// bitwise identical to the same request on a flat Session
// (tests/test_shard.cpp is the differential proof).
//
// Scope: sharding serves the constant-horizon local solvers with
// per-agent outputs — safe, averaging, distributed-safe,
// distributed-averaging — in full-collaboration mode with per-agent (or
// no) damping. Everything else is rejected with a CheckError naming the
// reason: global solvers read the whole instance, sublinear's estimate
// has no per-agent vector to stitch, collaboration_oblivious breaks the
// halo-horizon bound (party members can be arbitrarily far in H), and
// beta-global / none-then-scale damping couple all agents through one
// global minimum. The averaging family at radius R needs
// 2R+1 <= halo_radius; safe needs halo_radius >= 1 (always true).
//
// Updates: apply() first applies the delta to the global instance, then
// routes it. Pure value edits are translated into shard-local ids and
// forwarded to every shard whose sub-instance contains them (the shard
// Sessions repair their caches surgically, so incremental re-solves stay
// warm); structural edits rebuild the global communication graph, assign
// any new agents to shards, and re-extract only the shards whose core
// intersects the dirty region B_H(touched, halo_radius) — every other
// shard's sub-instance is provably byte-identical before and after, so
// it is left untouched. Id-remapping deltas (agent removals) fall back
// to a full repartition + re-extraction: cold but still exact.
//
// Threading: ONE cooperative pool, sized to the requested total (or the
// hardware), shared by the fan-out and every shard Session (via
// SessionOptions::shared_pool). The scheduler supports nested parallel
// regions — a fan-out worker solving shard s registers its inner
// chunked loops as bulk jobs that idle workers join — so a single pool
// is deadlock-free and the process never runs S·(threads/S) + S + T
// workers on T cores the way the old per-shard-pool design did
// (tests/test_shard.cpp pins the thread budget).
//
// Observability: shard.extract / shard.solve / shard.stitch spans, the
// shard.halo_agents gauge, and shard.requests / shard.delta_routes /
// shard.reextracts / shard.rebuilds counters.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mmlp/engine/session.hpp"
#include "mmlp/engine/solver.hpp"
#include "mmlp/shard/extract.hpp"
#include "mmlp/shard/partition.hpp"

namespace mmlp::engine {

struct ShardedOptions {
  std::int32_t shards = 2;
  /// Halo hops each shard carries; serves safe always and the averaging
  /// family while 2R+1 <= halo_radius. Must be >= 1.
  std::int32_t halo_radius = 3;
  shard::PartitionStrategy strategy = shard::PartitionStrategy::kContiguous;
  std::uint64_t seed = 1;  ///< BFS partition seed selection
  /// Total worker budget: ONE pool of exactly this many workers is
  /// shared by the fan-out and every shard session. 0 = MMLP_THREADS
  /// env, else hardware concurrency.
  std::size_t threads = 0;
};

class ShardedSession {
 public:
  /// Mutable binding: apply() is available. The caller keeps `instance`
  /// alive (and does not mutate it behind the session's back).
  explicit ShardedSession(Instance& instance, ShardedOptions options = {});

  /// Const binding: solve-only; apply() throws.
  explicit ShardedSession(const Instance& instance,
                          ShardedOptions options = {});

  ShardedSession(const ShardedSession&) = delete;
  ShardedSession& operator=(const ShardedSession&) = delete;

  const Instance& instance() const { return *instance_; }
  std::int32_t num_shards() const { return options_.shards; }
  std::int32_t halo_radius() const { return options_.halo_radius; }
  const shard::Partition& partition() const { return partition_; }
  const shard::ShardInstance& shard_instance(std::int32_t s) const;
  Session& shard_session(std::int32_t s);

  /// Total halo copies across shards (the replication overhead; also
  /// exported as the shard.halo_agents gauge).
  std::size_t halo_agents() const;

  /// Fan out, solve per shard, stitch (see file comment). Bitwise equal
  /// to engine::solve on a flat Session over the same instance.
  SolveResult solve(const SolveRequest& request,
                    const SolverRegistry& registry);
  SolveResult solve(const SolveRequest& request);

  /// Apply to the global instance and route to the shards (see file
  /// comment). repaired_entries counts shards that absorbed the delta
  /// (routed or re-extracted); rebuilt reports a full repartition.
  Session::ApplyReport apply(const InstanceDelta& delta);

  /// Aggregated cache/scratch counters over all shard sessions.
  SessionStats stats() const;

  /// Workers in the single shared pool (the session's total thread
  /// budget — there are no per-shard pools).
  std::size_t worker_threads() const;

  /// The shared pool itself (fan-out + every shard session run on it).
  ThreadPool& pool() { return *pool_; }

 private:
  struct Shard {
    shard::ShardInstance piece;
    std::unique_ptr<Session> session;  // bound to piece.instance
  };

  void rebuild_all();
  std::unique_ptr<Shard> extract_one(std::int32_t s) const;

  const Instance* instance_;
  Instance* mutable_instance_ = nullptr;
  ShardedOptions options_;
  std::unique_ptr<ThreadPool> pool_;  ///< shared: fan-out + shard sessions
  Hypergraph graph_;  ///< full-mode global communication graph
  shard::Partition partition_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mmlp::engine

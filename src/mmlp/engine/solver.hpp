// The unified request/response solver API.
//
// Every algorithm in the repo — safe, local averaging, the centralized
// baselines, the exact LP, the sublinear estimator, and the LOCAL-model
// re-derivations — answers the same max-min LP instance, so the engine
// exposes them behind one SolveRequest/SolveResult pair plus a
// name-keyed SolverRegistry. A request names the algorithm and carries
// the union of all tuning knobs (radius, damping, hypergraph mode,
// simplex settings, thread count, sampling parameters); the result
// carries the solution, the common evaluation (ω, feasibility,
// per-party benefits), algorithm-specific diagnostics, and a timing
// breakdown that separates the algorithm proper from session-cache
// building — the observable that warm repeat solves drive to zero.
//
// solve(session, request) is the single entry point callers use; the
// examples, the bench harness and tools/mmlp_batch all route through it
// instead of dispatching on algorithm names by hand.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mmlp/core/baselines.hpp"
#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/optimal.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/lp/simplex.hpp"
#include "mmlp/util/cancel.hpp"

namespace mmlp::engine {

/// One solve request against the session's instance. Fields outside an
/// algorithm's vocabulary are ignored by it (R means nothing to "safe");
/// the registry entry documents which knobs each solver reads.
struct SolveRequest {
  std::string algorithm = "safe";  ///< registry key; see SolverRegistry::names()

  std::int32_t R = 1;  ///< view radius (averaging, distributed-averaging, sublinear)
  AveragingDamping damping = AveragingDamping::kBetaPerAgent;
  bool collaboration_oblivious = false;  ///< drop party hyperedges from H
  /// Solve one view LP per isomorphism class of views instead of one per
  /// agent (safe, averaging, distributed-averaging). Exact-structure
  /// groups only, so the output stays bitwise identical to the
  /// non-deduplicated solve; the session caches the class partition per
  /// (radius, mode). The averaging solvers' diagnostics gain
  /// view_classes and dedup_ratio (lp_solves is reported always).
  bool deduplicate = false;
  /// Re-solve only the dirty region of the deltas applied (via
  /// Session::apply) since the previous solve of the same shape, and
  /// splice into the memoized result (safe, averaging,
  /// distributed-averaging). Bitwise identical to a full solve of the
  /// mutated instance; the first solve, id-remapping deltas, and
  /// non-local option combinations fall back to the full algorithm.
  /// Diagnostics gain incremental / dirty_agents / resolved_agents.
  /// Incremental requests must not run concurrently on one session.
  bool incremental = false;
  /// Enable the mmlp::obs span tracer for the duration of this request
  /// (no-op when a caller — e.g. mmlp_batch --trace-out — already turned
  /// it on globally). The collected spans stay in the process-wide
  /// Tracer; export them with obs::Tracer::instance().to_chrome_json().
  bool trace = false;
  SimplexOptions simplex;  ///< LP settings for view LPs and the exact solver
  /// Worker threads for this request: 0 = the session's pool. A nonzero
  /// value must currently match the session pool (requests do not spin
  /// up private pools); the engine checks and reports a CheckError on
  /// mismatch so a mis-sized deployment fails loudly.
  std::size_t threads = 0;
  /// Shard count for partitioned solving: 0 = whatever the serving
  /// session is. A value >= 2 must match a ShardedSession built with
  /// that many shards (engine::ShardedSession::solve); a flat Session
  /// rejects it, so a request meant for a sharded deployment fails
  /// loudly instead of silently solving monolithically.
  std::int32_t shards = 0;

  std::uint64_t seed = 1;        ///< sublinear party sampling
  std::int32_t samples = 64;     ///< sublinear sample count
  double confidence = 0.95;      ///< sublinear Hoeffding level
  GreedyOptions greedy;          ///< greedy baseline tuning
  OptimalOptions optimal;        ///< exact-solver tuning (simplex field
                                 ///< overridden by `simplex` above)

  /// Wall-clock budget for this request in milliseconds; 0 = unlimited.
  /// When the budget runs out the solve stops cooperatively (workers
  /// finish their current chunk), the result carries status kTimeout
  /// with no solution, and the session's caches stay valid — the next
  /// request on the same session is bitwise-equal to a fresh-session
  /// run.
  std::int64_t deadline_ms = 0;
  /// Replayable fault schedule for the selfstab-* algorithms
  /// (FaultPlan::serialize grammar, e.g. "s7;0:drop:3:5;1:crash:2").
  /// Empty = fault-free. Other algorithms reject a non-empty plan.
  std::string fault_plan;
};

/// How a request ended. kTimeout/kCancelled results carry no solution
/// (has_solution false, x empty) and an explanatory `error` string.
enum class SolveStatus : std::uint8_t {
  kOk,         ///< ran to completion
  kTimeout,    ///< deadline_ms elapsed before the solver finished
  kCancelled,  ///< the caller's CancelToken was cancelled explicitly
};

/// Stable wire name: "ok", "timeout", "cancelled".
const char* solve_status_name(SolveStatus status);

/// The response. For estimator algorithms (sublinear) has_solution is
/// false and x is empty — the estimate lives in `diagnostics`.
struct SolveResult {
  std::string algorithm;

  /// kOk unless the request timed out or was cancelled; then `error`
  /// holds the reason and the solution fields below are empty.
  SolveStatus status = SolveStatus::kOk;
  std::string error;

  bool has_solution = false;
  std::vector<double> x;               ///< per-agent activities (when has_solution)
  double omega = 0.0;                  ///< min_k benefit of x (0 without a solution)
  bool feasible = false;               ///< evaluate(x).feasible()
  std::vector<double> party_benefit;   ///< Σ_v c_kv x_v per party k

  /// Algorithm diagnostics, e.g. averaging {"ratio_bound", "R"},
  /// greedy {"steps"}, optimal {"exact"}, sublinear {"mean_benefit",
  /// "half_width", "agents_evaluated"}.
  std::map<std::string, double> diagnostics;

  /// Timing breakdown. total_ms = cache_build_ms + solve_ms up to clock
  /// granularity; cache_build_ms is the session-cache construction this
  /// request paid for (0 on a warm session — the acceptance observable
  /// of BENCH_engine.json). The cache numbers are derived from deltas
  /// of session-global counters: exact when solves on a session run one
  /// at a time (every current caller); when requests overlap on one
  /// session they may attribute a concurrent request's cache build to
  /// this one (cache_build_ms is clamped to total_ms, so solve_ms never
  /// goes negative).
  double total_ms = 0.0;
  double cache_build_ms = 0.0;
  double solve_ms = 0.0;
  std::int64_t cache_hits = 0;    ///< warm cache lookups during this solve
  std::int64_t cache_misses = 0;  ///< cache entries built during this solve

  /// Deltas of the global obs::Registry counters across this request:
  /// simplex_solves / simplex_pivots, bfs_ball_expansions,
  /// view_class_canonicalizations / view_class_prehash_skips, and
  /// scratch_leases. Session-global like the cache numbers above, with
  /// the same caveat under overlapping solves.
  std::map<std::string, std::int64_t> counters;
};

/// Name → solver dispatch. Entries wrap the *_with(Session&) overloads;
/// the common post-processing (evaluation, timing) happens in solve().
class SolverRegistry {
 public:
  /// Fills x/has_solution/diagnostics; solve() fills the rest.
  using SolverFn = std::function<void(Session&, const SolveRequest&, SolveResult&)>;

  struct Entry {
    std::string name;
    std::string description;  ///< one line, shown by tools and --help output
    bool local = false;       ///< constant-horizon local algorithm?
    bool faultable = false;   ///< reads request.fault_plan? (selfstab-*)
    SolverFn run;
  };

  SolverRegistry() = default;

  /// Register an entry; throws CheckError on a duplicate name.
  void add(Entry entry);

  bool contains(const std::string& name) const;

  /// Lookup; a CheckError on an unknown name spells out the requested
  /// algorithm and the registered ones.
  const Entry& find(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// The built-in registry: safe, averaging, uniform, greedy, optimal,
  /// sublinear, distributed-safe, distributed-averaging.
  static const SolverRegistry& builtin();

 private:
  std::map<std::string, Entry> entries_;
};

/// Run one request on a session through `registry`, filling the common
/// SolveResult fields (evaluation + timing/cache breakdown).
///
/// `cancel`, when given, is the caller's cancellation handle: cancel()
/// from any thread stops the solve cooperatively (status kCancelled),
/// and request.deadline_ms arms its deadline. With cancel == nullptr a
/// request-local token still enforces deadline_ms. Expiry never throws
/// out of solve(); it is reported through SolveResult::status, and the
/// session's caches remain valid for the next request.
SolveResult solve(Session& session, const SolveRequest& request,
                  const SolverRegistry& registry,
                  CancelToken* cancel = nullptr);

/// As above with the built-in registry.
SolveResult solve(Session& session, const SolveRequest& request,
                  CancelToken* cancel = nullptr);

/// The (obs counter name, SolveResult::counters key) pairs solve()
/// surfaces as per-request deltas — exposed so alternative front-ends
/// (engine::ShardedSession) fill the identical keys.
std::span<const std::pair<const char*, const char*>> surfaced_counter_names();

}  // namespace mmlp::engine

// Hand-rolled scanner for the flat JSONL request objects and the
// matching response serialiser. The accepted grammar is deliberately a
// subset of JSON — one object, string keys, scalar values (string /
// number / true / false) — because a solve request has no nesting; the
// subset keeps the tool dependency-free while every line it emits stays
// valid JSON for downstream tooling.
#include "mmlp/engine/wire.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "mmlp/engine/sharded_session.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/fault.hpp"
#include "mmlp/util/obs.hpp"
#include "mmlp/util/parallel.hpp"

namespace mmlp::engine {

namespace {

/// Cursor over one request line.
struct Scanner {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
      ++pos;
    }
  }
  bool done() {
    skip_ws();
    return pos >= text.size();
  }
  char peek() {
    skip_ws();
    MMLP_CHECK_MSG(pos < text.size(), "unexpected end of request line");
    return text[pos];
  }
  void expect(char c) {
    MMLP_CHECK_MSG(peek() == c, "expected '" << c << "' at offset " << pos
                                             << " of request line");
    ++pos;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      MMLP_CHECK_MSG(pos < text.size(), "unterminated string in request line");
      const char c = text[pos++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        MMLP_CHECK_MSG(pos < text.size(), "unterminated escape in request line");
        const char esc = text[pos++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default:
            MMLP_CHECK_MSG(false, "unsupported escape \\" << esc
                                      << " in request line");
        }
        continue;
      }
      out += c;
    }
  }
};

/// A scalar value: exactly one of the alternatives is set.
struct Scalar {
  enum class Kind { kString, kNumber, kBool } kind = Kind::kString;
  std::string string;
  double number = 0.0;
  bool boolean = false;
  std::string raw;  ///< original JSON text (for verbatim echo)
};

Scalar parse_scalar(Scanner& scanner) {
  Scalar value;
  const char c = scanner.peek();
  const std::size_t start = scanner.pos;
  if (c == '"') {
    value.kind = Scalar::Kind::kString;
    value.string = scanner.parse_string();
  } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-' ||
             c == '+') {
    value.kind = Scalar::Kind::kNumber;
    std::size_t end = scanner.pos;
    while (end < scanner.text.size() &&
           (std::isdigit(static_cast<unsigned char>(scanner.text[end])) != 0 ||
            scanner.text[end] == '-' || scanner.text[end] == '+' ||
            scanner.text[end] == '.' || scanner.text[end] == 'e' ||
            scanner.text[end] == 'E')) {
      ++end;
    }
    const std::string token = scanner.text.substr(scanner.pos, end - scanner.pos);
    char* parsed_end = nullptr;
    value.number = std::strtod(token.c_str(), &parsed_end);
    MMLP_CHECK_MSG(parsed_end != nullptr && *parsed_end == '\0',
                   "malformed number '" << token << "' in request line");
    scanner.pos = end;
  } else if (scanner.text.compare(scanner.pos, 4, "true") == 0) {
    value.kind = Scalar::Kind::kBool;
    value.boolean = true;
    scanner.pos += 4;
  } else if (scanner.text.compare(scanner.pos, 5, "false") == 0) {
    value.kind = Scalar::Kind::kBool;
    value.boolean = false;
    scanner.pos += 5;
  } else {
    MMLP_CHECK_MSG(false, "unsupported value at offset "
                              << scanner.pos
                              << " of request line (scalars only)");
  }
  value.raw = scanner.text.substr(start, scanner.pos - start);
  return value;
}

std::int64_t as_int(const Scalar& value, const std::string& key) {
  MMLP_CHECK_MSG(value.kind == Scalar::Kind::kNumber,
                 "request key '" << key << "' wants a number");
  const double rounded = std::nearbyint(value.number);
  MMLP_CHECK_MSG(rounded == value.number,
                 "request key '" << key << "' wants an integer, got "
                                 << value.number);
  // Reject magnitudes the int64 cast cannot represent (the cast would
  // be undefined behaviour, not a loud error). 2^63 is exact in double.
  MMLP_CHECK_MSG(rounded >= -9223372036854775808.0 &&
                     rounded < 9223372036854775808.0,
                 "request key '" << key << "' is out of integer range: "
                                 << rounded);
  return static_cast<std::int64_t>(rounded);
}

double as_number(const Scalar& value, const std::string& key) {
  MMLP_CHECK_MSG(value.kind == Scalar::Kind::kNumber,
                 "request key '" << key << "' wants a number");
  return value.number;
}

bool as_bool(const Scalar& value, const std::string& key) {
  MMLP_CHECK_MSG(value.kind == Scalar::Kind::kBool,
                 "request key '" << key << "' wants true/false");
  return value.boolean;
}

std::string as_string(const Scalar& value, const std::string& key) {
  MMLP_CHECK_MSG(value.kind == Scalar::Kind::kString,
                 "request key '" << key << "' wants a string");
  return value.string;
}

void append_escaped(std::ostringstream& oss, const std::string& text) {
  oss << '"' << json_escape(text) << '"';
}

void append_number(std::ostringstream& oss, double value) {
  MMLP_CHECK_MSG(std::isfinite(value), "non-finite metric: " << value);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  oss << buffer;
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // JSON strings may not contain raw control characters.
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

AveragingDamping damping_from_name(const std::string& name) {
  if (name == "beta-per-agent") {
    return AveragingDamping::kBetaPerAgent;
  }
  if (name == "beta-global") {
    return AveragingDamping::kBetaGlobal;
  }
  if (name == "none") {
    return AveragingDamping::kNone;
  }
  if (name == "none-then-scale") {
    return AveragingDamping::kNoneThenScale;
  }
  MMLP_CHECK_MSG(false, "unknown damping '"
                            << name
                            << "' (beta-per-agent, beta-global, none, "
                               "none-then-scale)");
}

const char* to_name(AveragingDamping damping) {
  switch (damping) {
    case AveragingDamping::kBetaPerAgent: return "beta-per-agent";
    case AveragingDamping::kBetaGlobal: return "beta-global";
    case AveragingDamping::kNone: return "none";
    case AveragingDamping::kNoneThenScale: return "none-then-scale";
  }
  return "beta-per-agent";
}

namespace {

/// One level of array nesting — the only nesting the grammar accepts:
/// an array of scalars (remove_agents) or of flat objects (the
/// coefficient edit lists). Element kinds may not mix.
struct ArrayValue {
  bool objects = false;
  std::vector<Scalar> scalars;
  std::vector<std::vector<std::pair<std::string, Scalar>>> object_items;
};

ArrayValue parse_array(Scanner& scanner) {
  ArrayValue out;
  scanner.expect('[');
  if (scanner.peek() == ']') {
    ++scanner.pos;
    return out;
  }
  bool first = true;
  bool decided = false;
  while (true) {
    if (!first) {
      scanner.expect(',');
    }
    first = false;
    if (scanner.peek() == '{') {
      MMLP_CHECK_MSG(!decided || out.objects,
                     "mixed element kinds in a request-line array");
      out.objects = true;
      decided = true;
      scanner.expect('{');
      std::vector<std::pair<std::string, Scalar>> fields;
      bool first_field = true;
      while (scanner.peek() != '}') {
        if (!first_field) {
          scanner.expect(',');
        }
        first_field = false;
        std::string key = scanner.parse_string();
        scanner.expect(':');
        fields.emplace_back(std::move(key), parse_scalar(scanner));
      }
      scanner.expect('}');
      out.object_items.push_back(std::move(fields));
    } else {
      MMLP_CHECK_MSG(!(decided && out.objects),
                     "mixed element kinds in a request-line array");
      decided = true;
      out.scalars.push_back(parse_scalar(scanner));
    }
    if (scanner.peek() == ']') {
      ++scanner.pos;
      return out;
    }
  }
}

/// Field lookup inside one edit object, with the unknown-field check
/// the flat keys get from the main dispatch.
std::int64_t object_int(
    const std::vector<std::pair<std::string, Scalar>>& fields,
    const char* name, const char* context) {
  for (const auto& [key, value] : fields) {
    if (key == name) {
      return as_int(value, name);
    }
  }
  MMLP_CHECK_MSG(false, context << " entry is missing '" << name << "'");
}

double object_number(const std::vector<std::pair<std::string, Scalar>>& fields,
                     const char* name, const char* context) {
  for (const auto& [key, value] : fields) {
    if (key == name) {
      return as_number(value, name);
    }
  }
  MMLP_CHECK_MSG(false, context << " entry is missing '" << name << "'");
}

void check_object_fields(
    const std::vector<std::pair<std::string, Scalar>>& fields,
    std::initializer_list<const char*> allowed, const char* context) {
  for (const auto& [key, value] : fields) {
    bool known = false;
    for (const char* name : allowed) {
      known = known || key == name;
    }
    MMLP_CHECK_MSG(known, "unknown field '" << key << "' in a " << context
                                            << " entry");
  }
}

void apply_solve_key(SolveRequest& request, const std::string& key,
                     const Scalar& value) {
  if (key == "algorithm") {
    request.algorithm = as_string(value, key);
  } else if (key == "R") {
    request.R = static_cast<std::int32_t>(as_int(value, key));
  } else if (key == "damping") {
    request.damping = damping_from_name(as_string(value, key));
  } else if (key == "collaboration_oblivious") {
    request.collaboration_oblivious = as_bool(value, key);
  } else if (key == "deduplicate") {
    request.deduplicate = as_bool(value, key);
  } else if (key == "incremental") {
    request.incremental = as_bool(value, key);
  } else if (key == "threads") {
    request.threads = static_cast<std::size_t>(as_int(value, key));
  } else if (key == "shards") {
    request.shards = static_cast<std::int32_t>(as_int(value, key));
  } else if (key == "seed") {
    request.seed = static_cast<std::uint64_t>(as_int(value, key));
  } else if (key == "samples") {
    request.samples = static_cast<std::int32_t>(as_int(value, key));
  } else if (key == "confidence") {
    request.confidence = as_number(value, key);
  } else if (key == "greedy_max_steps") {
    request.greedy.max_steps = as_int(value, key);
  } else if (key == "greedy_step_fraction") {
    request.greedy.step_fraction = as_number(value, key);
  } else if (key == "greedy_min_gain") {
    request.greedy.min_gain = as_number(value, key);
  } else if (key == "simplex_max_iterations") {
    request.simplex.max_iterations = as_int(value, key);
  } else if (key == "trace") {
    request.trace = as_bool(value, key);
  } else if (key == "deadline_ms") {
    const std::int64_t deadline = as_int(value, key);
    MMLP_CHECK_MSG(deadline >= 0,
                   "request key 'deadline_ms' must be >= 0 (0 = unlimited), "
                   "got " << deadline);
    request.deadline_ms = deadline;
  } else if (key == "fault_plan") {
    request.fault_plan = as_string(value, key);
    if (!request.fault_plan.empty()) {
      // Validate eagerly so a malformed plan is rejected at the wire
      // boundary (code "validate") instead of mid-solve.
      FaultPlan::parse(request.fault_plan);
    }
  } else {
    MMLP_CHECK_MSG(false, "unknown request key '" << key << "'");
  }
}

void apply_update_key(InstanceDelta& delta, const std::string& key,
                      bool is_array, const Scalar& scalar,
                      const ArrayValue& array) {
  const auto want_objects = [&](const char* context) {
    MMLP_CHECK_MSG(is_array && array.scalars.empty(),
                   "update key '" << context
                                  << "' wants an array of objects");
  };
  if (key == "set_usage") {
    want_objects("set_usage");
    for (const auto& fields : array.object_items) {
      check_object_fields(fields, {"i", "v", "a"}, "set_usage");
      delta.set_usage(
          static_cast<ResourceId>(object_int(fields, "i", "set_usage")),
          static_cast<AgentId>(object_int(fields, "v", "set_usage")),
          object_number(fields, "a", "set_usage"));
    }
  } else if (key == "erase_usage") {
    want_objects("erase_usage");
    for (const auto& fields : array.object_items) {
      check_object_fields(fields, {"i", "v"}, "erase_usage");
      delta.erase_usage(
          static_cast<ResourceId>(object_int(fields, "i", "erase_usage")),
          static_cast<AgentId>(object_int(fields, "v", "erase_usage")));
    }
  } else if (key == "set_benefit") {
    want_objects("set_benefit");
    for (const auto& fields : array.object_items) {
      check_object_fields(fields, {"k", "v", "c"}, "set_benefit");
      delta.set_benefit(
          static_cast<PartyId>(object_int(fields, "k", "set_benefit")),
          static_cast<AgentId>(object_int(fields, "v", "set_benefit")),
          object_number(fields, "c", "set_benefit"));
    }
  } else if (key == "erase_benefit") {
    want_objects("erase_benefit");
    for (const auto& fields : array.object_items) {
      check_object_fields(fields, {"k", "v"}, "erase_benefit");
      delta.erase_benefit(
          static_cast<PartyId>(object_int(fields, "k", "erase_benefit")),
          static_cast<AgentId>(object_int(fields, "v", "erase_benefit")));
    }
  } else if (key == "remove_agents") {
    MMLP_CHECK_MSG(is_array && array.object_items.empty(),
                   "update key 'remove_agents' wants an array of ints");
    for (const Scalar& value : array.scalars) {
      delta.remove_agent(static_cast<AgentId>(as_int(value, key)));
    }
  } else if (key == "add_agents") {
    delta.add_agents(static_cast<AgentId>(as_int(scalar, key)));
  } else if (key == "add_resources") {
    delta.add_resources(static_cast<ResourceId>(as_int(scalar, key)));
  } else if (key == "add_parties") {
    delta.add_parties(static_cast<PartyId>(as_int(scalar, key)));
  } else {
    MMLP_CHECK_MSG(false, "unknown update key '" << key << "'");
  }
}

}  // namespace

WireCommand parse_command_line(const std::string& line) {
  // First pass: collect every (key, value) — "op" may appear anywhere
  // in the object, so dispatch happens after the scan.
  struct Item {
    std::string key;
    bool is_array = false;
    Scalar scalar;
    ArrayValue array;
  };
  std::vector<Item> items;
  // The scanning pass is the *grammar*: its failures rethrow as
  // WireParseError (error code "parse"). The dispatch below is
  // semantics on a well-formed line (code "validate").
  try {
    Scanner scanner{line};
    scanner.expect('{');
    bool first = true;
    while (scanner.peek() != '}') {
      if (!first) {
        scanner.expect(',');
      }
      first = false;
      Item item;
      item.key = scanner.parse_string();
      scanner.expect(':');
      if (scanner.peek() == '[') {
        item.is_array = true;
        item.array = parse_array(scanner);
      } else {
        item.scalar = parse_scalar(scanner);
      }
      items.push_back(std::move(item));
    }
    scanner.expect('}');
    MMLP_CHECK_MSG(scanner.done(),
                   "trailing content after request object: '"
                       << line.substr(scanner.pos) << "'");
  } catch (const WireParseError&) {
    throw;
  } catch (const CheckError& error) {
    throw WireParseError(error.what());
  }

  std::string op = "solve";
  for (const Item& item : items) {
    if (item.key == "op") {
      MMLP_CHECK_MSG(!item.is_array, "request key 'op' wants a string");
      op = as_string(item.scalar, "op");
    }
  }

  WireCommand command;
  if (op == "solve") {
    command.kind = WireCommand::Kind::kSolve;
    for (const Item& item : items) {
      if (item.key == "op") {
        continue;
      }
      if (item.key == "id") {
        MMLP_CHECK_MSG(!item.is_array, "request key 'id' wants a scalar");
        command.id = item.scalar.raw;
        continue;
      }
      MMLP_CHECK_MSG(!item.is_array, "solve request key '"
                                         << item.key << "' wants a scalar");
      apply_solve_key(command.request, item.key, item.scalar);
    }
  } else if (op == "update") {
    command.kind = WireCommand::Kind::kUpdate;
    for (const Item& item : items) {
      if (item.key == "op") {
        continue;
      }
      if (item.key == "id") {
        MMLP_CHECK_MSG(!item.is_array, "request key 'id' wants a scalar");
        command.id = item.scalar.raw;
        continue;
      }
      apply_update_key(command.delta, item.key, item.is_array, item.scalar,
                       item.array);
    }
  } else if (op == "stats") {
    command.kind = WireCommand::Kind::kStats;
    for (const Item& item : items) {
      if (item.key == "op") {
        continue;
      }
      if (item.key == "id") {
        MMLP_CHECK_MSG(!item.is_array, "request key 'id' wants a scalar");
        command.id = item.scalar.raw;
        continue;
      }
      MMLP_CHECK_MSG(false, "unknown stats key '" << item.key
                                                  << "' (only id)");
    }
  } else {
    MMLP_CHECK_MSG(false, "unknown op '" << op << "' (solve, update, stats)");
  }
  return command;
}

WireRequest parse_request_line(const std::string& line) {
  WireCommand command = parse_command_line(line);
  MMLP_CHECK_MSG(command.kind == WireCommand::Kind::kSolve,
                 "expected a solve request, got an update command");
  return {std::move(command.request), std::move(command.id)};
}

std::string apply_report_to_json_line(const Session::ApplyReport& report,
                                      const std::string& id) {
  std::ostringstream oss;
  oss << '{';
  if (!id.empty()) {
    oss << "\"id\": " << id << ", ";
  }
  oss << "\"op\": \"update\", \"revision\": " << report.revision
      << ", \"structural\": " << (report.structural ? "true" : "false")
      << ", \"rebuilt\": " << (report.rebuilt ? "true" : "false")
      << ", \"touched_agents\": " << report.touched_agents
      << ", \"repaired_entries\": " << report.repaired_entries
      << ", \"apply_ms\": ";
  append_number(oss, report.apply_ms);
  oss << '}';
  return oss.str();
}

namespace {

/// Per-worker scheduler counters (see ThreadPool::WorkerStats): chunks
/// and steals make scaling losses observable in production — a hot
/// steal count means the submit path is imbalanced, a lopsided
/// busy/idle split means a serial stage is starving the pool.
void append_workers(std::ostringstream& oss,
                    const std::vector<ThreadPool::WorkerStats>& workers) {
  oss << ", \"workers\": [";
  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (w > 0) {
      oss << ", ";
    }
    oss << "{\"busy_ns\": " << workers[w].busy_ns
        << ", \"idle_ns\": " << workers[w].idle_ns
        << ", \"tasks\": " << workers[w].tasks
        << ", \"chunks\": " << workers[w].chunks
        << ", \"steals\": " << workers[w].steals << '}';
  }
  oss << ']';
}

/// Fault/recovery/guardrail totals for the stats op, surfaced as
/// first-class fields (they also appear inside "metrics", but stream
/// consumers watching recovery health should not have to know obs
/// counter names).
void append_fault_recovery(std::ostringstream& oss,
                           std::int64_t integrity_fallbacks) {
  const obs::MetricsSnapshot snapshot = obs::Registry::global().snapshot();
  const auto counter = [&](const char* name) -> std::int64_t {
    const auto it = snapshot.counters.find(name);
    return it != snapshot.counters.end() ? it->second : 0;
  };
  oss << ", \"faults_injected\": " << counter("fault.injected")
      << ", \"recoveries\": " << counter("selfstab.recoveries")
      << ", \"rounds_to_legitimate\": "
      << counter("selfstab.rounds_to_legitimate")
      << ", \"timeouts\": " << counter("engine.timeouts")
      << ", \"cancellations\": " << counter("engine.cancellations")
      << ", \"integrity_fallbacks\": " << integrity_fallbacks;
}

}  // namespace

std::string stats_to_json_line(Session& session, const std::string& id) {
  const SessionStats stats = session.stats();
  ThreadPool& pool =
      session.pool() != nullptr ? *session.pool() : ThreadPool::global();
  const std::vector<ThreadPool::WorkerStats> workers = pool.worker_stats();

  std::ostringstream oss;
  oss << '{';
  if (!id.empty()) {
    oss << "\"id\": " << id << ", ";
  }
  oss << "\"op\": \"stats\", \"revision\": " << session.revision()
      << ", \"agents\": " << session.instance().num_agents()
      << ", \"cache_hits\": " << stats.cache_hits
      << ", \"cache_misses\": " << stats.cache_misses
      << ", \"cache_build_ms\": ";
  append_number(oss, stats.cache_build_ms);
  oss << ", \"scratch_created\": " << stats.scratch_created
      << ", \"scratch_reused\": " << stats.scratch_reused;
  append_fault_recovery(oss, stats.integrity_fallbacks);
  oss << ", \"queue_depth\": " << pool.queue_depth();
  append_workers(oss, workers);
  // The registry snapshot is already one JSON object; embed it verbatim.
  oss << ", \"metrics\": " << obs::Registry::global().to_json_line();
  oss << '}';
  return oss.str();
}

std::string stats_to_json_line(ShardedSession& session,
                               const std::string& id) {
  const SessionStats stats = session.stats();
  std::ostringstream oss;
  oss << '{';
  if (!id.empty()) {
    oss << "\"id\": " << id << ", ";
  }
  oss << "\"op\": \"stats\", \"revision\": " << session.instance().revision()
      << ", \"agents\": " << session.instance().num_agents()
      << ", \"shards\": " << session.num_shards()
      << ", \"halo_radius\": " << session.halo_radius()
      << ", \"halo_agents\": " << session.halo_agents()
      << ", \"cache_hits\": " << stats.cache_hits
      << ", \"cache_misses\": " << stats.cache_misses
      << ", \"cache_build_ms\": ";
  append_number(oss, stats.cache_build_ms);
  oss << ", \"scratch_created\": " << stats.scratch_created
      << ", \"scratch_reused\": " << stats.scratch_reused;
  append_fault_recovery(oss, stats.integrity_fallbacks);
  oss << ", \"pool_threads\": " << session.worker_threads()
      << ", \"queue_depth\": " << session.pool().queue_depth();
  append_workers(oss, session.pool().worker_stats());
  // The registry snapshot is already one JSON object; embed it verbatim.
  oss << ", \"metrics\": " << obs::Registry::global().to_json_line();
  oss << '}';
  return oss.str();
}

std::string error_to_json_line(const std::string& code,
                               const std::string& message,
                               std::size_t line_number) {
  std::ostringstream oss;
  oss << "{\"error\": ";
  append_escaped(oss, message);
  oss << ", \"code\": ";
  append_escaped(oss, code);
  oss << ", \"line\": " << line_number << '}';
  return oss.str();
}

std::string result_to_json_line(const SolveResult& result,
                                const std::string& id, bool emit_x) {
  std::ostringstream oss;
  oss << '{';
  if (!id.empty()) {
    oss << "\"id\": " << id << ", ";
  }
  oss << "\"algorithm\": ";
  append_escaped(oss, result.algorithm);
  oss << ", \"status\": \"" << solve_status_name(result.status) << '"';
  if (result.status != SolveStatus::kOk) {
    oss << ", \"error\": ";
    append_escaped(oss, result.error);
  }
  if (result.has_solution) {
    oss << ", \"omega\": ";
    append_number(oss, result.omega);
    oss << ", \"feasible\": " << (result.feasible ? "true" : "false");
    oss << ", \"agents\": " << result.x.size();
  }
  oss << ", \"total_ms\": ";
  append_number(oss, result.total_ms);
  oss << ", \"cache_build_ms\": ";
  append_number(oss, result.cache_build_ms);
  oss << ", \"solve_ms\": ";
  append_number(oss, result.solve_ms);
  oss << ", \"cache_hits\": " << result.cache_hits
      << ", \"cache_misses\": " << result.cache_misses;
  if (!result.counters.empty()) {
    oss << ", \"counters\": {";
    bool first = true;
    for (const auto& [key, value] : result.counters) {
      if (!first) {
        oss << ", ";
      }
      first = false;
      append_escaped(oss, key);
      oss << ": " << value;
    }
    oss << '}';
  }
  if (!result.diagnostics.empty()) {
    oss << ", \"diagnostics\": {";
    bool first = true;
    for (const auto& [key, value] : result.diagnostics) {
      if (!first) {
        oss << ", ";
      }
      first = false;
      append_escaped(oss, key);
      oss << ": ";
      append_number(oss, value);
    }
    oss << '}';
  }
  if (emit_x && result.has_solution) {
    oss << ", \"x\": [";
    for (std::size_t v = 0; v < result.x.size(); ++v) {
      if (v > 0) {
        oss << ", ";
      }
      append_number(oss, result.x[v]);
    }
    oss << ']';
  }
  oss << '}';
  return oss.str();
}

}  // namespace mmlp::engine

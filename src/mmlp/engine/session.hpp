// engine::Session — the long-lived per-instance solve context.
//
// The paper's algorithms are different answers to *the same* max-min LP
// instance, and everything expensive they derive from it is a pure
// function of (instance, radius, hypergraph mode): the communication
// graph H, the radius-R balls B_H(v, R), the Figure 2 growth sets, and
// the per-worker scratch workspaces (view extraction, simplex tableaus,
// materialization arenas). A Session binds to one Instance and caches
// all of it, so solve #2..#N on the same instance pay only for the
// algorithm proper — the request/response serving model the ROADMAP's
// "many requests, one hot session" path is built on (tools/mmlp_batch).
//
// Cache keys:
//   graph        : collaboration_oblivious           (2 slots)
//   balls        : (radius, collaboration_oblivious) (map; larger radii
//                  are built incrementally by expanding the largest
//                  cached smaller radius instead of re-running BFS)
//   growth sets  : (radius, collaboration_oblivious) (map; balls implied)
//   view classes : (radius, collaboration_oblivious) (map; balls implied)
//   scratch      : pooled, unkeyed — objects only donate capacity
//
// Thread-safety: the cache accessors are serialised by an internal
// mutex, so concurrent solves on one session are safe; the scratch
// pools are lock-protected checkouts designed for exactly that. Cached
// references remain valid for the session's lifetime (entries are never
// evicted). Results are bitwise identical to the cold free-function
// paths: the cached structures are the very objects those paths compute
// internally, and scratch reuse never carries state between solves.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/core/view.hpp"
#include "mmlp/core/view_class.hpp"
#include "mmlp/dist/runtime.hpp"
#include "mmlp/graph/hypergraph.hpp"
#include "mmlp/util/parallel.hpp"
#include "mmlp/util/scratch_pool.hpp"

namespace mmlp::engine {

struct SessionOptions {
  /// Worker threads for this session's parallel loops. 0 = share the
  /// process-global pool; N > 0 = the session owns a dedicated pool.
  std::size_t threads = 0;
};

/// Monotonic cache/reuse counters. Snapshot before and after a solve to
/// attribute cache-build cost to the request that paid it (SolveResult's
/// timing breakdown does exactly that).
struct SessionStats {
  std::int64_t cache_hits = 0;    ///< graph/ball/growth lookups served warm
  std::int64_t cache_misses = 0;  ///< lookups that had to build the entry
  double cache_build_ms = 0.0;    ///< wall time spent building cache entries
  std::int64_t scratch_created = 0;  ///< scratch leases served by construction
  std::int64_t scratch_reused = 0;   ///< scratch leases served from the pool
};

/// Per-worker scratch bundle for the distributed (LOCAL-model) solvers:
/// world materialization plus the view/LP workspace that runs inside the
/// materialized world.
struct DistScratch {
  MaterializeArena arena;
  LocalWorld world;
  ViewScratch view;
};

class Session {
 public:
  /// Binds to `instance` without copying it; the caller keeps the
  /// instance alive for the session's lifetime.
  explicit Session(const Instance& instance, SessionOptions options = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const Instance& instance() const { return *instance_; }

  /// The pool parallel loops should run on: the session-owned pool, or
  /// nullptr meaning "use ThreadPool::global()" (the convention of
  /// parallel_for's pool parameter).
  ThreadPool* pool() const { return owned_pool_.get(); }

  /// Worker count of the effective pool.
  std::size_t thread_count() const;

  /// Communication hypergraph H (Section 1.4), cached per mode.
  const Hypergraph& graph(bool collaboration_oblivious);

  /// B_H(v, radius) for every agent, cached per (radius, mode). A miss
  /// with a smaller same-mode radius already cached is served
  /// incrementally: the largest cached balls are expanded level by level
  /// (graph/bfs expand_balls) instead of re-running BFS from scratch —
  /// the result is element-for-element identical either way.
  const std::vector<std::vector<AgentId>>& balls(std::int32_t radius,
                                                 bool collaboration_oblivious);

  /// The Figure 2 growth sets for the balls of (radius, mode), cached.
  const GrowthSets& growth_sets(std::int32_t radius,
                                bool collaboration_oblivious);

  /// The view isomorphism-class partition for (radius, mode), cached.
  /// Built from the cached balls; the dedup solve paths of
  /// local_averaging_with / distributed_local_averaging_with key their
  /// one-solve-per-class loops on it.
  const ViewClassIndex& view_classes(std::int32_t radius,
                                     bool collaboration_oblivious);

  /// Per-worker scratch pools (see ScratchPool): view extraction + LP
  /// solving, and the distributed solvers' materialization bundles.
  ScratchPool<ViewScratch>& view_scratch() { return view_scratch_; }
  ScratchPool<DistScratch>& dist_scratch() { return dist_scratch_; }

  /// Counter snapshot (scratch numbers are pulled from the pools).
  SessionStats stats() const;

 private:
  using Key = std::pair<std::int32_t, bool>;  // (radius, oblivious)

  const Instance* instance_;
  SessionOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;

  mutable std::mutex mutex_;
  std::optional<Hypergraph> graph_[2];  // [collaboration_oblivious]
  std::map<Key, std::vector<std::vector<AgentId>>> balls_;
  std::map<Key, GrowthSets> growth_;
  std::map<Key, ViewClassIndex> view_classes_;
  std::int64_t cache_hits_ = 0;
  std::int64_t cache_misses_ = 0;
  double cache_build_ms_ = 0.0;

  ScratchPool<ViewScratch> view_scratch_;
  ScratchPool<DistScratch> dist_scratch_;
};

}  // namespace mmlp::engine

// engine::Session — the long-lived per-instance solve context.
//
// The paper's algorithms are different answers to *the same* max-min LP
// instance, and everything expensive they derive from it is a pure
// function of (instance, radius, hypergraph mode): the communication
// graph H, the radius-R balls B_H(v, R), the Figure 2 growth sets, and
// the per-worker scratch workspaces (view extraction, simplex tableaus,
// materialization arenas). A Session binds to one Instance and caches
// all of it, so solve #2..#N on the same instance pay only for the
// algorithm proper — the request/response serving model the ROADMAP's
// "many requests, one hot session" path is built on (tools/mmlp_batch).
//
// Cache keys:
//   graph        : collaboration_oblivious           (2 slots)
//   balls        : (radius, collaboration_oblivious) (map; larger radii
//                  are built incrementally by expanding the largest
//                  cached smaller radius instead of re-running BFS)
//   growth sets  : (radius, collaboration_oblivious) (map; balls implied)
//   view classes : (radius, collaboration_oblivious) (map; balls implied)
//   scratch      : pooled, unkeyed — objects only donate capacity
//
// Mutation: a session constructed over a mutable Instance& additionally
// owns the update pipeline. apply(InstanceDelta) routes the edit into
// the instance and then *repairs* every cached structure surgically
// instead of dropping it: the communication graphs are rebuilt only on
// membership changes, cached balls are re-BFSed only inside the dirty
// region (repair_balls), growth sets recompute only the rows whose
// supports intersect it, and view-class partitions re-canonicalize only
// the dirty agents. Every cache entry carries the instance revision it
// was derived from and accessors assert the stamp before serving, so a
// stale structure can never reach a solver (mutating the instance
// behind the session's back trips the same assert). Deltas that remap
// agent ids (removals) fall back to dropping the caches wholesale —
// still correct, just cold. Incremental re-solves additionally keep
// per-algorithm memos (previous solution + per-view state) keyed by an
// options fingerprint; dirty_since() turns the edit log into the ball
// around everything edited after a given revision.
//
// Thread-safety: the cache accessors are serialised by an internal
// mutex, so concurrent solves on one session are safe; the scratch
// pools are lock-protected checkouts designed for exactly that. Cached
// references remain valid for the session's lifetime — repairs mutate
// entries in place — EXCEPT after an apply() that remapped agent ids,
// which invalidates previously returned references. apply() itself and
// incremental solves must not run concurrently with other solves on the
// same session (they mutate the instance and the memos those solves
// read). Results are bitwise identical to the cold free-function paths.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mmlp/core/instance.hpp"
#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/view.hpp"
#include "mmlp/core/view_class.hpp"
#include "mmlp/dist/runtime.hpp"
#include "mmlp/graph/hypergraph.hpp"
#include "mmlp/util/parallel.hpp"
#include "mmlp/util/scratch_pool.hpp"

namespace mmlp::engine {

struct SessionOptions {
  /// Worker threads for this session's parallel loops. 0 = share the
  /// process-global pool; N > 0 = the session owns a dedicated pool.
  /// Ignored when shared_pool is set.
  std::size_t threads = 0;
  /// Non-owning: run this session's parallel loops on an externally
  /// owned pool instead of creating one. ShardedSession uses this to
  /// run every shard session (and its own fan-out) on ONE cooperative
  /// pool sized to the hardware, so S shards never stack S pools of
  /// workers on top of each other (the oversubscription fix of ROADMAP
  /// item 3). The pool must outlive the session.
  ThreadPool* shared_pool = nullptr;
};

/// Monotonic cache/reuse counters. Snapshot before and after a solve to
/// attribute cache-build cost to the request that paid it (SolveResult's
/// timing breakdown does exactly that).
struct SessionStats {
  std::int64_t cache_hits = 0;    ///< graph/ball/growth lookups served warm
  std::int64_t cache_misses = 0;  ///< lookups that had to build the entry
  double cache_build_ms = 0.0;    ///< wall time spent building cache entries
  std::int64_t scratch_created = 0;  ///< scratch leases served by construction
  std::int64_t scratch_reused = 0;   ///< scratch leases served from the pool
  /// Times apply()'s integrity spot-check caught a diverged cache and
  /// dropped every cached structure (rebuilt lazily from the instance,
  /// which is ground truth). 0 in a correct build — the counter exists
  /// so a repair bug degrades to cold-cache performance, not to wrong
  /// answers, and is visible when it does.
  std::int64_t integrity_fallbacks = 0;
};

/// Per-worker scratch bundle for the distributed (LOCAL-model) solvers:
/// world materialization plus the view/LP workspace that runs inside the
/// materialized world.
struct DistScratch {
  MaterializeArena arena;
  LocalWorld world;
  ViewScratch view;
};

/// Previous solution retained for incremental re-solves whose per-agent
/// outputs are scalars (safe, distributed averaging).
struct SolutionMemo {
  bool valid = false;
  std::uint64_t revision = 0;  ///< instance revision the solution matches
  std::vector<double> x;
};

/// Previous local-averaging run retained for incremental re-solves: the
/// full result plus every agent's view-LP solution x^u (the gather of
/// eq. (10) needs x^u_j for *unchanged* u ∈ V^j too, so the per-view
/// state must outlive the solve that produced it).
struct AveragingMemo {
  bool valid = false;
  std::uint64_t revision = 0;
  LocalAveragingResult result;
  std::vector<std::vector<double>> view_x;
};

class Session {
 public:
  /// Binds to `instance` without copying it; the caller keeps the
  /// instance alive for the session's lifetime. A session constructed
  /// over a const instance cannot apply() deltas.
  explicit Session(const Instance& instance, SessionOptions options = {});

  /// Mutable binding: as above, plus apply() is available.
  explicit Session(Instance& instance, SessionOptions options = {});

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const Instance& instance() const { return *instance_; }

  /// The instance revision this session's caches are valid for (equals
  /// instance().revision() unless someone mutated the instance behind
  /// the session's back — which the cache accessors then assert on).
  std::uint64_t revision() const;

  /// What apply() did to the session's caches.
  struct ApplyReport {
    std::uint64_t revision = 0;  ///< instance revision after the delta
    bool structural = false;     ///< support membership changed
    bool rebuilt = false;        ///< ids remapped: caches dropped wholesale
    std::size_t touched_agents = 0;    ///< |touched| of the delta
    std::size_t repaired_entries = 0;  ///< cache entries surgically repaired
    /// Balls recomputed from scratch by the post-repair integrity
    /// spot-check (a few per cached entry).
    std::size_t verified_balls = 0;
    /// The spot-check found a cached ball diverging from a from-scratch
    /// recompute: every cache was dropped (rebuilt set too) and every
    /// memo invalidated, so the next solves run full but correct.
    bool integrity_fallback = false;
    double apply_ms = 0.0;
  };

  /// Apply a delta to the bound instance and repair every cached
  /// structure in place (see the header comment). Requires the mutable
  /// constructor. Must not run concurrently with solves.
  ApplyReport apply(const InstanceDelta& delta);

  /// The sorted set of agents within `radius` of anything edited after
  /// `since_revision` — the dirty region an incremental solver with that
  /// knowledge horizon must re-solve. Empty when nothing was edited.
  /// nullopt when an intervening delta remapped agent ids: the previous
  /// solution is not addressable any more and callers must fall back to
  /// a full solve.
  std::optional<std::vector<AgentId>> dirty_since(std::uint64_t since_revision,
                                                  std::int32_t radius,
                                                  bool collaboration_oblivious);

  /// Incremental-solve memos, keyed by an options fingerprint the
  /// solver chooses. The reference stays valid for the session's
  /// lifetime; contents are owned by the solver (single incremental
  /// solve at a time per session).
  SolutionMemo& solution_memo(const std::string& fingerprint);
  AveragingMemo& averaging_memo(const std::string& fingerprint);

  /// The pool parallel loops should run on: the shared pool when the
  /// session was constructed with one, else the session-owned pool, or
  /// nullptr meaning "use ThreadPool::global()" (the convention of
  /// parallel_for's pool parameter).
  ThreadPool* pool() const {
    return options_.shared_pool != nullptr ? options_.shared_pool
                                           : owned_pool_.get();
  }

  /// Worker count of the effective pool.
  std::size_t thread_count() const;

  /// Communication hypergraph H (Section 1.4), cached per mode.
  const Hypergraph& graph(bool collaboration_oblivious);

  /// B_H(v, radius) for every agent, cached per (radius, mode). A miss
  /// with a smaller same-mode radius already cached is served
  /// incrementally: the largest cached balls are expanded level by level
  /// (graph/bfs expand_balls) instead of re-running BFS from scratch —
  /// the result is element-for-element identical either way.
  const std::vector<std::vector<AgentId>>& balls(std::int32_t radius,
                                                 bool collaboration_oblivious);

  /// The Figure 2 growth sets for the balls of (radius, mode), cached.
  const GrowthSets& growth_sets(std::int32_t radius,
                                bool collaboration_oblivious);

  /// The view isomorphism-class partition for (radius, mode), cached.
  /// Built from the cached balls; the dedup solve paths of
  /// local_averaging_with / distributed_local_averaging_with key their
  /// one-solve-per-class loops on it. Mutable-bound sessions build it
  /// with retained keys so apply() can repair it surgically.
  const ViewClassIndex& view_classes(std::int32_t radius,
                                     bool collaboration_oblivious);

  /// Per-worker scratch pools (see ScratchPool): view extraction + LP
  /// solving, and the distributed solvers' materialization bundles.
  ScratchPool<ViewScratch>& view_scratch() { return view_scratch_; }
  ScratchPool<DistScratch>& dist_scratch() { return dist_scratch_; }

  /// Counter snapshot (scratch numbers are pulled from the pools).
  SessionStats stats() const;

  /// TEST HOOK: overwrite agent `agent`'s cached radius-`radius` ball
  /// with garbage (the entry must be cached). Exists so tests can prove
  /// the apply() integrity fallback actually fires and so the bench
  /// recovery sweep can price it; nothing else may call it.
  void corrupt_cached_ball_for_test(std::int32_t radius,
                                    bool collaboration_oblivious,
                                    AgentId agent);

 private:
  using Key = std::pair<std::int32_t, bool>;  // (radius, oblivious)

  /// A cache entry plus the instance revision it was derived from;
  /// accessors assert the stamp before serving.
  template <typename T>
  struct Stamped {
    T value;
    std::uint64_t revision = 0;
  };

  /// One applied delta, as dirty_since needs it.
  struct EditRecord {
    std::uint64_t revision = 0;
    bool full = false;  ///< remapped ids: no surgical dirty set exists
    std::vector<AgentId> touched;
  };

  void assert_fresh(std::uint64_t entry_revision) const;
  void prune_log_locked();
  /// Spot-check the repaired ball caches against from-scratch BFS;
  /// true = a divergence was found and every cache/memo was dropped.
  bool verify_integrity_locked(ApplyReport& report);

  const Instance* instance_;
  Instance* mutable_instance_ = nullptr;
  SessionOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;

  mutable std::mutex mutex_;
  std::uint64_t revision_ = 0;  // instance revision the caches match
  /// Edit log for dirty_since. Pruned on every apply: records no valid
  /// memo can query any more are dropped, and a hard cap bounds the
  /// log on sessions whose memos go stale — log_floor_ records the
  /// highest pruned revision, below which dirty_since reports nullopt
  /// (the caller then falls back to a full solve).
  std::vector<EditRecord> log_;
  std::uint64_t log_floor_ = 0;
  std::optional<Stamped<Hypergraph>> graph_[2];  // [collaboration_oblivious]
  std::map<Key, Stamped<std::vector<std::vector<AgentId>>>> balls_;
  std::map<Key, Stamped<GrowthSets>> growth_;
  std::map<Key, Stamped<ViewClassIndex>> view_classes_;
  std::map<std::string, std::unique_ptr<SolutionMemo>> solution_memos_;
  std::map<std::string, std::unique_ptr<AveragingMemo>> averaging_memos_;
  std::int64_t cache_hits_ = 0;
  std::int64_t cache_misses_ = 0;
  double cache_build_ms_ = 0.0;
  std::int64_t integrity_fallbacks_ = 0;

  ScratchPool<ViewScratch> view_scratch_;
  ScratchPool<DistScratch> dist_scratch_;
};

}  // namespace mmlp::engine

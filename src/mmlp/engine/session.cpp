// Session cache implementation. Every accessor follows the same shape:
// lock, serve a warm entry if present (counted as a hit), otherwise
// build it under the lock with the build time charged to
// cache_build_ms_. Building under the lock is deliberate: concurrent
// solves on one session then build each entry exactly once, and the
// per-agent parallel loops inside the builders run on pool workers, not
// on threads that could re-enter the session.
#include "mmlp/engine/session.hpp"

#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/timer.hpp"

namespace mmlp::engine {

Session::Session(const Instance& instance, SessionOptions options)
    : instance_(&instance), options_(options) {
  if (options_.threads > 0) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
}

std::size_t Session::thread_count() const {
  return owned_pool_ != nullptr ? owned_pool_->size()
                                : ThreadPool::global().size();
}

const Hypergraph& Session::graph(bool collaboration_oblivious) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::optional<Hypergraph>& slot = graph_[collaboration_oblivious ? 1 : 0];
  if (slot.has_value()) {
    ++cache_hits_;
    return *slot;
  }
  ++cache_misses_;
  WallTimer timer;
  slot.emplace(instance_->communication_graph(collaboration_oblivious));
  cache_build_ms_ += timer.milliseconds();
  return *slot;
}

const std::vector<std::vector<AgentId>>& Session::balls(
    std::int32_t radius, bool collaboration_oblivious) {
  MMLP_CHECK_GE(radius, 0);
  // Resolve the graph first (its own lock scope) so the balls build
  // below never re-enters the session mutex.
  const Hypergraph& h = graph(collaboration_oblivious);
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{radius, collaboration_oblivious};
  if (const auto it = balls_.find(key); it != balls_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;
  WallTimer timer;
  // Incremental build: expand the largest cached same-mode balls of a
  // smaller radius instead of re-running BFS from scratch. When the
  // next-smaller radius is cached too, its difference gives the exact
  // BFS frontier, so only the ball boundary is rescanned. The expanded
  // result is element-for-element identical to a from-scratch build.
  const std::vector<std::vector<AgentId>>* from = nullptr;
  std::int32_t from_radius = -1;
  for (const auto& [cached_key, cached_balls] : balls_) {
    if (cached_key.second == collaboration_oblivious &&
        cached_key.first < radius && cached_key.first > from_radius) {
      from = &cached_balls;
      from_radius = cached_key.first;
    }
  }
  std::vector<std::vector<AgentId>> built;
  if (from != nullptr) {
    const std::vector<std::vector<AgentId>>* inner = nullptr;
    if (from_radius > 0) {
      if (const auto it = balls_.find(Key{from_radius - 1, collaboration_oblivious});
          it != balls_.end()) {
        inner = &it->second;
      }
    }
    built = expand_balls(h, *from, from_radius, inner, radius, pool());
  } else {
    built = all_balls(h, radius, pool());
  }
  auto [it, inserted] = balls_.emplace(key, std::move(built));
  cache_build_ms_ += timer.milliseconds();
  return it->second;
}

const ViewClassIndex& Session::view_classes(std::int32_t radius,
                                            bool collaboration_oblivious) {
  const std::vector<std::vector<AgentId>>& cached_balls =
      balls(radius, collaboration_oblivious);
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{radius, collaboration_oblivious};
  if (const auto it = view_classes_.find(key); it != view_classes_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;
  WallTimer timer;
  auto [it, inserted] = view_classes_.emplace(
      key, build_view_class_index(*instance_, cached_balls, radius,
                                  collaboration_oblivious, pool()));
  cache_build_ms_ += timer.milliseconds();
  return it->second;
}

const GrowthSets& Session::growth_sets(std::int32_t radius,
                                       bool collaboration_oblivious) {
  const std::vector<std::vector<AgentId>>& cached_balls =
      balls(radius, collaboration_oblivious);
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{radius, collaboration_oblivious};
  if (const auto it = growth_.find(key); it != growth_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;
  WallTimer timer;
  auto [it, inserted] =
      growth_.emplace(key, compute_growth_sets(*instance_, cached_balls));
  cache_build_ms_ += timer.milliseconds();
  return it->second;
}

SessionStats Session::stats() const {
  SessionStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.cache_hits = cache_hits_;
    stats.cache_misses = cache_misses_;
    stats.cache_build_ms = cache_build_ms_;
  }
  stats.scratch_created = static_cast<std::int64_t>(view_scratch_.creations() +
                                                    dist_scratch_.creations());
  stats.scratch_reused = static_cast<std::int64_t>(view_scratch_.reuses() +
                                                   dist_scratch_.reuses());
  return stats;
}

}  // namespace mmlp::engine

// Session cache implementation. Every accessor follows the same shape:
// lock, serve a warm entry if present (counted as a hit, with its
// revision stamp asserted), otherwise build it under the lock with the
// build time charged to cache_build_ms_. Building under the lock is
// deliberate: concurrent solves on one session then build each entry
// exactly once, and the per-agent parallel loops inside the builders
// run on pool workers, not on threads that could re-enter the session.
//
// apply() is the update pipeline's hub: route the delta into the
// instance, append it to the edit log, then repair every cached entry
// in place — rebuild the communication graphs only on membership
// changes, re-BFS only the dirty region of each cached ball set,
// recompute only the growth-set rows the dirty region touches, and
// re-canonicalize only the dirty agents of each view-class partition —
// and restamp everything with the new revision.
#include "mmlp/engine/session.hpp"

#include <algorithm>

#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/obs.hpp"
#include "mmlp/util/timer.hpp"

namespace mmlp::engine {

namespace {

/// Per-cache-kind hit/miss counters in the global registry. One pair of
/// relaxed adds per accessor call; lookups resolve once per kind.
struct CacheKindCounters {
  obs::Counter& hits;
  obs::Counter& misses;
  explicit CacheKindCounters(const char* kind)
      : hits(obs::Registry::global().counter(std::string("session.") + kind +
                                             ".hits")),
        misses(obs::Registry::global().counter(std::string("session.") + kind +
                                               ".misses")) {}
};

CacheKindCounters& graph_counters() {
  static CacheKindCounters counters("graph");
  return counters;
}
CacheKindCounters& balls_counters() {
  static CacheKindCounters counters("balls");
  return counters;
}
CacheKindCounters& growth_counters() {
  static CacheKindCounters counters("growth");
  return counters;
}
CacheKindCounters& view_class_counters() {
  static CacheKindCounters counters("view_classes");
  return counters;
}

}  // namespace

Session::Session(const Instance& instance, SessionOptions options)
    : instance_(&instance), options_(options), revision_(instance.revision()) {
  if (options_.shared_pool == nullptr && options_.threads > 0) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
}

Session::Session(Instance& instance, SessionOptions options)
    : Session(static_cast<const Instance&>(instance), options) {
  mutable_instance_ = &instance;
}

std::uint64_t Session::revision() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return revision_;
}

std::size_t Session::thread_count() const {
  const ThreadPool* effective = pool();
  return effective != nullptr ? effective->size() : ThreadPool::global().size();
}

void Session::assert_fresh(std::uint64_t entry_revision) const {
  // A mismatch means the instance was mutated without going through
  // apply() — the cached structure describes an instance that no longer
  // exists, and serving it would silently corrupt a solve.
  MMLP_CHECK_MSG(entry_revision == instance_->revision(),
                 "stale session cache: entry revision "
                     << entry_revision << " vs instance revision "
                     << instance_->revision()
                     << " (mutate the instance via Session::apply)");
}

const Hypergraph& Session::graph(bool collaboration_oblivious) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = graph_[collaboration_oblivious ? 1 : 0];
  if (slot.has_value()) {
    ++cache_hits_;
    graph_counters().hits.increment();
    assert_fresh(slot->revision);
    return slot->value;
  }
  ++cache_misses_;
  graph_counters().misses.increment();
  obs::ObsSpan span("session.build_graph", "engine");
  WallTimer timer;
  slot.emplace(Stamped<Hypergraph>{
      instance_->communication_graph(collaboration_oblivious),
      instance_->revision()});
  cache_build_ms_ += timer.milliseconds();
  return slot->value;
}

const std::vector<std::vector<AgentId>>& Session::balls(
    std::int32_t radius, bool collaboration_oblivious) {
  MMLP_CHECK_GE(radius, 0);
  // Resolve the graph first (its own lock scope) so the balls build
  // below never re-enters the session mutex.
  const Hypergraph& h = graph(collaboration_oblivious);
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{radius, collaboration_oblivious};
  if (const auto it = balls_.find(key); it != balls_.end()) {
    ++cache_hits_;
    balls_counters().hits.increment();
    assert_fresh(it->second.revision);
    return it->second.value;
  }
  ++cache_misses_;
  balls_counters().misses.increment();
  obs::ObsSpan span("session.build_balls", "engine");
  WallTimer timer;
  // Incremental build: expand the largest cached same-mode balls of a
  // smaller radius instead of re-running BFS from scratch. When the
  // next-smaller radius is cached too, its difference gives the exact
  // BFS frontier, so only the ball boundary is rescanned. The expanded
  // result is element-for-element identical to a from-scratch build.
  const std::vector<std::vector<AgentId>>* from = nullptr;
  std::int32_t from_radius = -1;
  for (const auto& [cached_key, cached_balls] : balls_) {
    if (cached_key.second == collaboration_oblivious &&
        cached_key.first < radius && cached_key.first > from_radius) {
      from = &cached_balls.value;
      from_radius = cached_key.first;
    }
  }
  std::vector<std::vector<AgentId>> built;
  if (from != nullptr) {
    const std::vector<std::vector<AgentId>>* inner = nullptr;
    if (from_radius > 0) {
      if (const auto it = balls_.find(Key{from_radius - 1, collaboration_oblivious});
          it != balls_.end()) {
        inner = &it->second.value;
      }
    }
    built = expand_balls(h, *from, from_radius, inner, radius, pool());
  } else {
    built = all_balls(h, radius, pool());
  }
  auto [it, inserted] = balls_.emplace(
      key, Stamped<std::vector<std::vector<AgentId>>>{std::move(built),
                                                      instance_->revision()});
  cache_build_ms_ += timer.milliseconds();
  return it->second.value;
}

const ViewClassIndex& Session::view_classes(std::int32_t radius,
                                            bool collaboration_oblivious) {
  const std::vector<std::vector<AgentId>>& cached_balls =
      balls(radius, collaboration_oblivious);
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{radius, collaboration_oblivious};
  if (const auto it = view_classes_.find(key); it != view_classes_.end()) {
    ++cache_hits_;
    view_class_counters().hits.increment();
    assert_fresh(it->second.revision);
    return it->second.value;
  }
  ++cache_misses_;
  view_class_counters().misses.increment();
  obs::ObsSpan span("session.build_view_classes", "engine");
  WallTimer timer;
  // Mutable-bound sessions retain the per-agent canonical keys so
  // apply() can repair the partition instead of rebuilding it.
  const bool keep_keys = mutable_instance_ != nullptr;
  auto [it, inserted] = view_classes_.emplace(
      key, Stamped<ViewClassIndex>{
               build_view_class_index(*instance_, cached_balls, radius,
                                      collaboration_oblivious, pool(),
                                      keep_keys),
               instance_->revision()});
  cache_build_ms_ += timer.milliseconds();
  return it->second.value;
}

const GrowthSets& Session::growth_sets(std::int32_t radius,
                                       bool collaboration_oblivious) {
  const std::vector<std::vector<AgentId>>& cached_balls =
      balls(radius, collaboration_oblivious);
  std::lock_guard<std::mutex> lock(mutex_);
  const Key key{radius, collaboration_oblivious};
  if (const auto it = growth_.find(key); it != growth_.end()) {
    ++cache_hits_;
    growth_counters().hits.increment();
    assert_fresh(it->second.revision);
    return it->second.value;
  }
  ++cache_misses_;
  growth_counters().misses.increment();
  obs::ObsSpan span("session.build_growth", "engine");
  WallTimer timer;
  auto [it, inserted] = growth_.emplace(
      key, Stamped<GrowthSets>{compute_growth_sets(*instance_, cached_balls),
                               instance_->revision()});
  cache_build_ms_ += timer.milliseconds();
  return it->second.value;
}

Session::ApplyReport Session::apply(const InstanceDelta& delta) {
  MMLP_CHECK_MSG(mutable_instance_ != nullptr,
                 "session is bound to a const Instance; construct it with a "
                 "mutable Instance& to apply deltas");
  static obs::Counter& delta_counter =
      obs::Registry::global().counter("session.deltas");
  delta_counter.increment();
  obs::ObsSpan span("session.apply", "engine");
  WallTimer timer;
  std::lock_guard<std::mutex> lock(mutex_);
  const DeltaEffect effect = mutable_instance_->apply(delta);

  ApplyReport report;
  report.revision = effect.revision;
  report.structural = effect.structural;
  report.touched_agents = effect.touched.size();
  if (effect.revision == revision_) {
    // Empty delta: nothing changed, nothing to repair.
    report.apply_ms = timer.milliseconds();
    return report;
  }

  if (effect.remapped) {
    // Ids moved: cached structures are not addressable in the new id
    // space. Drop them wholesale (rebuilt lazily, still correct) and
    // invalidate the incremental memos the same way.
    report.rebuilt = true;
    graph_[0].reset();
    graph_[1].reset();
    balls_.clear();
    growth_.clear();
    view_classes_.clear();
    for (auto& [key, memo] : solution_memos_) {
      memo->valid = false;
    }
    for (auto& [key, memo] : averaging_memos_) {
      memo->valid = false;
    }
    log_.push_back({effect.revision, true, {}});
    revision_ = effect.revision;
    prune_log_locked();  // every memo is invalid now: drops the log
    report.apply_ms = timer.milliseconds();
    return report;
  }

  log_.push_back({effect.revision, false, effect.touched});

  // Communication graphs: membership changes rebuild the cached modes;
  // pure value edits leave them untouched (hyperedges carry no values).
  for (int mode = 0; mode < 2; ++mode) {
    auto& slot = graph_[mode];
    if (!slot.has_value()) {
      continue;
    }
    if (effect.structural) {
      slot->value = instance_->communication_graph(mode == 1);
      ++report.repaired_entries;
    }
    slot->revision = effect.revision;
  }

  // Dirty region per (radius, mode), shared by the repairs below. The
  // touched set is closed over every changed adjacency (both endpoints
  // are in it), so one BFS on the *new* graph covers the old reach too.
  std::map<Key, std::vector<AgentId>> dirty_memo;
  const auto dirty_for = [&](const Key& key) -> const std::vector<AgentId>& {
    auto [it, inserted] = dirty_memo.try_emplace(key);
    if (inserted) {
      it->second = multi_source_ball(graph_[key.second ? 1 : 0]->value,
                                     effect.touched, key.first);
    }
    return it->second;
  };

  for (auto& [key, entry] : balls_) {
    if (effect.structural) {
      repair_balls(graph_[key.second ? 1 : 0]->value, key.first,
                   dirty_for(key), entry.value, pool());
      ++report.repaired_entries;
    }
    entry.revision = effect.revision;
  }
  for (auto& [key, entry] : growth_) {
    if (effect.structural) {
      repair_growth_sets(*instance_, balls_.at(key).value, dirty_for(key),
                         entry.value);
      ++report.repaired_entries;
    }
    entry.revision = effect.revision;
  }
  // View classes hash coefficient *values*, so they are dirty under
  // value-only edits too.
  for (auto& [key, entry] : view_classes_) {
    repair_view_class_index(*instance_, balls_.at(key).value, dirty_for(key),
                            entry.value, pool());
    ++report.repaired_entries;
    entry.revision = effect.revision;
  }

  // Integrity checksum over the surgical repairs above: recompute a few
  // evenly spaced balls per cached entry from scratch and compare. The
  // balls are the root structure (growth sets and view classes derive
  // from them), so a divergence here is the earliest observable symptom
  // of a repair bug — and the response is to stop trusting every cache,
  // not to limp on: drop them wholesale and invalidate the memos, which
  // turns the bug into cold-cache latency instead of wrong bits.
  verify_integrity_locked(report);

  revision_ = effect.revision;
  prune_log_locked();
  report.apply_ms = timer.milliseconds();
  return report;
}

bool Session::verify_integrity_locked(ApplyReport& report) {
  static obs::Counter& fallback_counter =
      obs::Registry::global().counter("session.integrity_fallbacks");
  constexpr std::size_t kSamplesPerEntry = 4;
  bool diverged = false;
  for (const auto& [key, entry] : balls_) {
    const Hypergraph& h = graph_[key.second ? 1 : 0]->value;
    const auto n = entry.value.size();
    // k * n / kSamples for k = 0..K-1: always includes agent 0, spreads
    // the rest across the id space (duplicates on tiny n are harmless).
    for (std::size_t k = 0; k < kSamplesPerEntry && !diverged; ++k) {
      const std::size_t v = k * n / kSamplesPerEntry;
      if (v >= n) {
        break;
      }
      ++report.verified_balls;
      if (entry.value[v] != ball(h, static_cast<NodeId>(v), key.first)) {
        diverged = true;
      }
    }
    if (diverged) {
      break;
    }
  }
  if (!diverged) {
    return false;
  }
  report.integrity_fallback = true;
  report.rebuilt = true;
  graph_[0].reset();
  graph_[1].reset();
  balls_.clear();
  growth_.clear();
  view_classes_.clear();
  for (auto& [key, memo] : solution_memos_) {
    memo->valid = false;
  }
  for (auto& [key, memo] : averaging_memos_) {
    memo->valid = false;
  }
  ++integrity_fallbacks_;
  fallback_counter.increment();
  return true;
}

void Session::corrupt_cached_ball_for_test(std::int32_t radius,
                                           bool collaboration_oblivious,
                                           AgentId agent) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = balls_.find(Key{radius, collaboration_oblivious});
  MMLP_CHECK_MSG(it != balls_.end(),
                 "corrupt_cached_ball_for_test: radius "
                     << radius << " (oblivious=" << collaboration_oblivious
                     << ") is not cached");
  auto& cached = it->second.value;
  MMLP_CHECK_GE(agent, 0);
  MMLP_CHECK_LT(static_cast<std::size_t>(agent), cached.size());
  // Every real ball contains its own center, so an empty one is always
  // detectably wrong.
  cached[static_cast<std::size_t>(agent)].clear();
}

void Session::prune_log_locked() {
  // Records at or below every valid memo's revision can never be
  // queried again; drop them. The hard cap bounds the log even when a
  // memo goes permanently stale — dirty_since then answers nullopt for
  // it and its next solve falls back to full, which re-stamps it.
  std::uint64_t needed = revision_;
  for (const auto& [key, memo] : solution_memos_) {
    if (memo->valid) {
      needed = std::min(needed, memo->revision);
    }
  }
  for (const auto& [key, memo] : averaging_memos_) {
    if (memo->valid) {
      needed = std::min(needed, memo->revision);
    }
  }
  std::size_t drop = 0;
  while (drop < log_.size() && log_[drop].revision <= needed) {
    ++drop;
  }
  constexpr std::size_t kMaxLogRecords = 1024;
  if (log_.size() - drop > kMaxLogRecords) {
    drop = log_.size() - kMaxLogRecords;
  }
  if (drop > 0) {
    log_floor_ = log_[drop - 1].revision;
    log_.erase(log_.begin(),
               log_.begin() + static_cast<std::ptrdiff_t>(drop));
  }
}

std::optional<std::vector<AgentId>> Session::dirty_since(
    std::uint64_t since_revision, std::int32_t radius,
    bool collaboration_oblivious) {
  MMLP_CHECK_GE(radius, 0);
  std::vector<AgentId> touched;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (since_revision < log_floor_) {
      // Edits after since_revision were already pruned: the union
      // would be incomplete, so report "too old" instead.
      return std::nullopt;
    }
    for (auto it = log_.rbegin();
         it != log_.rend() && it->revision > since_revision; ++it) {
      if (it->full) {
        return std::nullopt;
      }
      touched.insert(touched.end(), it->touched.begin(), it->touched.end());
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  if (touched.empty() || radius == 0) {
    return touched;
  }
  // graph() takes its own lock scope; the BFS itself runs lock-free.
  const Hypergraph& h = graph(collaboration_oblivious);
  return multi_source_ball(h, touched, radius);
}

SolutionMemo& Session::solution_memo(const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = solution_memos_[fingerprint];
  if (slot == nullptr) {
    slot = std::make_unique<SolutionMemo>();
  }
  return *slot;
}

AveragingMemo& Session::averaging_memo(const std::string& fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = averaging_memos_[fingerprint];
  if (slot == nullptr) {
    slot = std::make_unique<AveragingMemo>();
  }
  return *slot;
}

SessionStats Session::stats() const {
  SessionStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.cache_hits = cache_hits_;
    stats.cache_misses = cache_misses_;
    stats.cache_build_ms = cache_build_ms_;
    stats.integrity_fallbacks = integrity_fallbacks_;
    // Refresh the registry gauges while the lock pins the cache maps:
    // entry counts and memo sizes are instantaneous values, sampled
    // whenever someone asks for stats (op:"stats", batch epilogue).
    obs::Registry& registry = obs::Registry::global();
    std::int64_t graphs = 0;
    graphs += graph_[0].has_value() ? 1 : 0;
    graphs += graph_[1].has_value() ? 1 : 0;
    registry.gauge("session.graph.entries").set(graphs);
    registry.gauge("session.balls.entries")
        .set(static_cast<std::int64_t>(balls_.size()));
    registry.gauge("session.growth.entries")
        .set(static_cast<std::int64_t>(growth_.size()));
    registry.gauge("session.view_classes.entries")
        .set(static_cast<std::int64_t>(view_classes_.size()));
    registry.gauge("session.solution_memos")
        .set(static_cast<std::int64_t>(solution_memos_.size()));
    registry.gauge("session.averaging_memos")
        .set(static_cast<std::int64_t>(averaging_memos_.size()));
    registry.gauge("session.edit_log_records")
        .set(static_cast<std::int64_t>(log_.size()));
  }
  stats.scratch_created = static_cast<std::int64_t>(view_scratch_.creations() +
                                                    dist_scratch_.creations());
  stats.scratch_reused = static_cast<std::int64_t>(view_scratch_.reuses() +
                                                   dist_scratch_.reuses());
  return stats;
}

}  // namespace mmlp::engine

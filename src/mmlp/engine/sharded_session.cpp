#include "mmlp/engine/sharded_session.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "mmlp/core/solution.hpp"
#include "mmlp/graph/bfs.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/obs.hpp"
#include "mmlp/util/timer.hpp"

namespace mmlp::engine {

namespace {

/// Same contract as the registry's scoped enabler: own the switch only
/// when the request asked for tracing and nobody turned it on already.
class ScopedTraceEnable {
 public:
  explicit ScopedTraceEnable(bool want)
      : owns_(want && !obs::tracing_enabled()) {
    if (owns_) {
      obs::Tracer::instance().set_enabled(true);
    }
  }
  ~ScopedTraceEnable() {
    if (owns_) {
      obs::Tracer::instance().set_enabled(false);
    }
  }
  ScopedTraceEnable(const ScopedTraceEnable&) = delete;
  ScopedTraceEnable& operator=(const ScopedTraceEnable&) = delete;

 private:
  bool owns_;
};

std::int64_t counter_value(const obs::MetricsSnapshot& snapshot,
                           const char* name) {
  const auto it = snapshot.counters.find(name);
  return it != snapshot.counters.end() ? it->second : 0;
}

void set_halo_gauge(std::size_t halo_agents) {
  static obs::Gauge& gauge = obs::Registry::global().gauge("shard.halo_agents");
  gauge.set(static_cast<std::int64_t>(halo_agents));
}

}  // namespace

ShardedSession::ShardedSession(Instance& instance, ShardedOptions options)
    : instance_(&instance), mutable_instance_(&instance),
      options_(std::move(options)) {
  MMLP_CHECK_GE(options_.shards, 1);
  MMLP_CHECK_GE(options_.halo_radius, 1);
  // One pool, total budget exactly options_.threads (0 = env/hardware,
  // resolved by the pool). Fan-out workers and the shard sessions'
  // nested loops all cooperate on it.
  pool_ = std::make_unique<ThreadPool>(options_.threads);
  options_.threads = pool_->size();
  rebuild_all();
}

ShardedSession::ShardedSession(const Instance& instance, ShardedOptions options)
    : instance_(&instance), options_(std::move(options)) {
  MMLP_CHECK_GE(options_.shards, 1);
  MMLP_CHECK_GE(options_.halo_radius, 1);
  pool_ = std::make_unique<ThreadPool>(options_.threads);
  options_.threads = pool_->size();
  rebuild_all();
}

std::size_t ShardedSession::worker_threads() const { return pool_->size(); }

const shard::ShardInstance& ShardedSession::shard_instance(
    std::int32_t s) const {
  MMLP_CHECK_GE(s, 0);
  MMLP_CHECK_LT(s, options_.shards);
  return shards_[static_cast<std::size_t>(s)]->piece;
}

Session& ShardedSession::shard_session(std::int32_t s) {
  MMLP_CHECK_GE(s, 0);
  MMLP_CHECK_LT(s, options_.shards);
  return *shards_[static_cast<std::size_t>(s)]->session;
}

std::size_t ShardedSession::halo_agents() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->piece.halo_agents();
  }
  return total;
}

std::unique_ptr<ShardedSession::Shard> ShardedSession::extract_one(
    std::int32_t s) const {
  auto shard = std::make_unique<Shard>();
  shard->piece = shard::extract_shard(
      *instance_, graph_, partition_.core[static_cast<std::size_t>(s)],
      options_.halo_radius);
  shard->session = std::make_unique<Session>(
      shard->piece.instance, SessionOptions{.shared_pool = pool_.get()});
  return shard;
}

void ShardedSession::rebuild_all() {
  graph_ = instance_->communication_graph(false);
  partition_ = shard::make_partition(
      graph_, {.shards = options_.shards, .strategy = options_.strategy,
               .seed = options_.seed});
  shards_.clear();
  shards_.resize(static_cast<std::size_t>(options_.shards));
  parallel_for(
      shards_.size(),
      [&](std::size_t s) {
        shards_[s] = extract_one(static_cast<std::int32_t>(s));
      },
      pool_.get());
  set_halo_gauge(halo_agents());
}

SolveResult ShardedSession::solve(const SolveRequest& request,
                                  const SolverRegistry& registry) {
  const SolverRegistry::Entry& entry = registry.find(request.algorithm);
  const bool averaging_family = request.algorithm == "averaging" ||
                                request.algorithm == "distributed-averaging";
  const bool safe_family = request.algorithm == "safe" ||
                           request.algorithm == "distributed-safe";
  MMLP_CHECK_MSG(
      entry.local && (averaging_family || safe_family),
      "algorithm '" << request.algorithm
                    << "' is not shardable: sharded solving serves the "
                       "constant-horizon per-agent solvers (safe, averaging, "
                       "distributed-safe, distributed-averaging)");
  MMLP_CHECK_MSG(
      !request.collaboration_oblivious,
      "sharded solving requires full-collaboration mode: without party "
      "hyperedges in H a halo cannot bound a view's party supports");
  if (request.algorithm == "averaging") {
    MMLP_CHECK_MSG(request.damping == AveragingDamping::kBetaPerAgent ||
                       request.damping == AveragingDamping::kNone,
                   "sharded averaging supports the per-agent (or no) damping "
                   "rule: global dampings couple every agent through one "
                   "instance-wide minimum");
  }
  if (averaging_family) {
    MMLP_CHECK_MSG(
        2 * request.R + 1 <= options_.halo_radius,
        "averaging at R=" << request.R << " needs halo_radius >= "
                          << 2 * request.R + 1 << " but the sharded session "
                          << "was built with halo_radius = "
                          << options_.halo_radius);
  }
  MMLP_CHECK_MSG(
      request.shards == 0 || request.shards == options_.shards,
      "request wants " << request.shards << " shards but the session was "
                       << "built with " << options_.shards
                       << " (size the session, not the request)");
  MMLP_CHECK_MSG(
      request.threads == 0 || request.threads == worker_threads(),
      "request wants " << request.threads
                       << " threads but the sharded session's shared pool has "
                       << worker_threads()
                       << " worker(s) (size the sharded session, not the "
                          "request)");

  const ScopedTraceEnable trace_scope(request.trace);
  obs::Registry& metrics = obs::Registry::global();
  static obs::Counter& requests = metrics.counter("shard.requests");
  requests.increment();
  const obs::MetricsSnapshot counters_before = metrics.snapshot();

  SolveRequest sub_request = request;
  sub_request.shards = 0;
  sub_request.threads = 0;
  sub_request.trace = false;  // owned at this level for the whole fan-out

  WallTimer timer;
  std::vector<SolveResult> shard_results(shards_.size());
  parallel_for(
      shards_.size(),
      [&](std::size_t s) {
        obs::ObsSpan span("shard.solve", "engine.shard");
        shard_results[s] =
            engine::solve(*shards_[s]->session, sub_request, registry);
      },
      pool_.get());

  SolveResult result;
  result.algorithm = entry.name;
  // A shard that timed out / was cancelled poisons the whole request:
  // the stitched solution would be missing that shard's core. Propagate
  // the first non-ok status instead of stitching partial bits.
  for (const SolveResult& shard_result : shard_results) {
    if (shard_result.status != SolveStatus::kOk) {
      result.status = shard_result.status;
      result.error = shard_result.error;
      break;
    }
  }
  if (result.status != SolveStatus::kOk) {
    result.total_ms = timer.milliseconds();
    return result;
  }
  {
    obs::ObsSpan span("shard.stitch", "engine.shard");
    result.x.resize(static_cast<std::size_t>(instance_->num_agents()));
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const shard::ShardInstance& piece = shards_[s]->piece;
      const SolveResult& shard_result = shard_results[s];
      MMLP_CHECK(shard_result.has_solution);
      MMLP_CHECK_EQ(shard_result.x.size(), piece.agents.size());
      for (std::size_t j = 0; j < piece.core.size(); ++j) {
        result.x[static_cast<std::size_t>(piece.core[j])] =
            shard_result.x[static_cast<std::size_t>(piece.core_local[j])];
      }
    }
    result.has_solution = true;
    const Evaluation evaluation =
        evaluate(*instance_, result.x, &result.party_benefit);
    result.omega = evaluation.omega;
    result.feasible = evaluation.feasible();
  }
  result.total_ms = timer.milliseconds();

  const obs::MetricsSnapshot counters_after = metrics.snapshot();
  for (const auto& [name, key] : surfaced_counter_names()) {
    result.counters[key] = counter_value(counters_after, name) -
                           counter_value(counters_before, name);
  }

  // Aggregate the per-shard breakdowns. Under a parallel fan-out the
  // shard cache builds overlap in wall time, so the sum is clamped to
  // the request wall like the flat path clamps under concurrent solves.
  double cache_build_ms = 0.0;
  double lp_solves = 0.0;
  bool have_lp_solves = false;
  double dirty_agents = 0.0;
  double resolved_agents = 0.0;
  double incremental = 1.0;
  bool have_incremental = !shard_results.empty();
  for (const SolveResult& shard_result : shard_results) {
    cache_build_ms += shard_result.cache_build_ms;
    result.cache_hits += shard_result.cache_hits;
    result.cache_misses += shard_result.cache_misses;
    if (const auto it = shard_result.diagnostics.find("lp_solves");
        it != shard_result.diagnostics.end()) {
      lp_solves += it->second;
      have_lp_solves = true;
    }
    if (const auto it = shard_result.diagnostics.find("incremental");
        it != shard_result.diagnostics.end()) {
      incremental = std::min(incremental, it->second);
      dirty_agents += shard_result.diagnostics.at("dirty_agents");
      resolved_agents += shard_result.diagnostics.at("resolved_agents");
    } else {
      have_incremental = false;
    }
  }
  result.cache_build_ms = std::min(cache_build_ms, result.total_ms);
  result.solve_ms = result.total_ms - result.cache_build_ms;
  result.diagnostics["shards"] = static_cast<double>(options_.shards);
  result.diagnostics["halo_agents"] = static_cast<double>(halo_agents());
  if (averaging_family) {
    result.diagnostics["R"] = static_cast<double>(request.R);
  }
  if (have_lp_solves) {
    result.diagnostics["lp_solves"] = lp_solves;
  }
  if (have_incremental) {
    result.diagnostics["incremental"] = incremental;
    result.diagnostics["dirty_agents"] = dirty_agents;
    result.diagnostics["resolved_agents"] = resolved_agents;
  }
  return result;
}

SolveResult ShardedSession::solve(const SolveRequest& request) {
  return solve(request, SolverRegistry::builtin());
}

Session::ApplyReport ShardedSession::apply(const InstanceDelta& delta) {
  MMLP_CHECK_MSG(mutable_instance_ != nullptr,
                 "apply() requires a ShardedSession over a mutable instance");
  obs::Registry& metrics = obs::Registry::global();
  static obs::Counter& routes = metrics.counter("shard.delta_routes");
  static obs::Counter& reextracts = metrics.counter("shard.reextracts");
  static obs::Counter& rebuilds = metrics.counter("shard.rebuilds");

  WallTimer timer;
  const DeltaEffect effect = mutable_instance_->apply(delta);
  Session::ApplyReport report;
  report.revision = effect.revision;
  report.structural = effect.structural;
  report.touched_agents = effect.touched.size();

  if (effect.remapped) {
    // Agent ids were compacted: every shard map is stale. Repartition
    // and re-extract from scratch — cold but exact.
    rebuild_all();
    rebuilds.increment();
    report.rebuilt = true;
    report.repaired_entries = shards_.size();
  } else if (effect.structural) {
    // Support membership changed: the communication graph is new, and
    // so (possibly) are agents. Assign new agents to the shard of their
    // smallest already-owned neighbor (round-robin when isolated), then
    // re-extract exactly the shards whose core intersects the dirty
    // region B_H(touched, halo) — every other shard's sub-instance is
    // byte-identical before and after the delta.
    graph_ = instance_->communication_graph(false);
    const std::size_t old_agents = partition_.shard_of.size();
    const auto new_agents = static_cast<std::size_t>(instance_->num_agents());
    for (std::size_t v = old_agents; v < new_agents; ++v) {
      std::int32_t assigned = -1;
      for (const NodeId w : graph_.neighbors(static_cast<NodeId>(v))) {
        if (static_cast<std::size_t>(w) < old_agents) {
          assigned = partition_.shard_of[static_cast<std::size_t>(w)];
          break;  // neighbors are sorted: this is the smallest owner
        }
      }
      if (assigned < 0) {
        assigned = static_cast<std::int32_t>(
            v % static_cast<std::size_t>(options_.shards));
      }
      partition_.shard_of.push_back(assigned);
      // New ids exceed every existing id, so push_back keeps the core
      // sorted.
      partition_.core[static_cast<std::size_t>(assigned)].push_back(
          static_cast<AgentId>(v));
    }
    const std::vector<AgentId> dirty =
        multi_source_ball(graph_, effect.touched, options_.halo_radius);
    std::vector<char> affected(shards_.size(), 0);
    for (const AgentId v : dirty) {
      affected[static_cast<std::size_t>(
          partition_.shard_of[static_cast<std::size_t>(v)])] = 1;
    }
    std::vector<std::size_t> to_extract;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (affected[s] != 0) {
        to_extract.push_back(s);
      }
    }
    parallel_for(
        to_extract.size(),
        [&](std::size_t index) {
          const std::size_t s = to_extract[index];
          shards_[s] = extract_one(static_cast<std::int32_t>(s));
        },
        pool_.get());
    reextracts.add(static_cast<std::int64_t>(to_extract.size()));
    report.repaired_entries = to_extract.size();
  } else {
    // Pure value edits: translate into shard-local ids and forward to
    // every shard whose sub-instance holds the edited entries. The
    // shard Sessions repair their own caches surgically, so memos and
    // incremental re-solves stay warm.
    std::atomic<std::size_t> routed{0};
    parallel_for(
        shards_.size(),
        [&](std::size_t s) {
          const shard::ShardInstance& piece = shards_[s]->piece;
          InstanceDelta local;
          for (const InstanceDelta::CoefEdit& edit : delta.usages) {
            const ResourceId i = piece.local_resource(edit.row);
            const AgentId v = piece.local_agent(edit.v);
            if (i >= 0 && v >= 0) {
              local.usages.push_back({i, v, edit.value});
            }
          }
          for (const InstanceDelta::CoefEdit& edit : delta.benefits) {
            const PartyId k = piece.local_party(edit.row);
            const AgentId v = piece.local_agent(edit.v);
            if (k >= 0 && v >= 0) {
              local.benefits.push_back({k, v, edit.value});
            }
          }
          if (!local.empty()) {
            (void)shards_[s]->session->apply(local);
            routed.fetch_add(1, std::memory_order_relaxed);
          }
        },
        pool_.get());
    routes.add(static_cast<std::int64_t>(routed.load()));
    report.repaired_entries = routed.load();
  }
  set_halo_gauge(halo_agents());
  report.apply_ms = timer.milliseconds();
  return report;
}

SessionStats ShardedSession::stats() const {
  SessionStats total;
  for (const auto& shard : shards_) {
    const SessionStats stats = shard->session->stats();
    total.cache_hits += stats.cache_hits;
    total.cache_misses += stats.cache_misses;
    total.cache_build_ms += stats.cache_build_ms;
    total.scratch_created += stats.scratch_created;
    total.scratch_reused += stats.scratch_reused;
    total.integrity_fallbacks += stats.integrity_fallbacks;
  }
  return total;
}

}  // namespace mmlp::engine

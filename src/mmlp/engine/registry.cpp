// The built-in solver registry and the common solve() shell.
//
// Each entry adapts one *_with(Session&) overload to the uniform
// request/response shape; solve() wraps the dispatch with the shared
// post-processing every caller wants — evaluation of the returned x
// against eq. (1) and the timing/cache breakdown derived from session
// stats deltas.
#include "mmlp/engine/solver.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"
#include "mmlp/core/sublinear.hpp"
#include "mmlp/dist/algorithms.hpp"
#include "mmlp/dist/self_stabilizing_solver.hpp"
#include "mmlp/util/cancel.hpp"
#include "mmlp/util/check.hpp"
#include "mmlp/util/fault.hpp"
#include "mmlp/util/obs.hpp"
#include "mmlp/util/timer.hpp"

namespace mmlp::engine {

namespace {

LocalAveragingOptions averaging_options(const SolveRequest& request) {
  LocalAveragingOptions options;
  options.R = request.R;
  options.collaboration_oblivious = request.collaboration_oblivious;
  options.damping = request.damping;
  options.lp = request.simplex;
  options.deduplicate = request.deduplicate;
  return options;
}

void attach_incremental_diagnostics(const IncrementalStats& stats,
                                    SolveResult& result) {
  result.diagnostics["incremental"] = stats.incremental ? 1.0 : 0.0;
  result.diagnostics["dirty_agents"] = static_cast<double>(stats.dirty_agents);
  result.diagnostics["resolved_agents"] =
      static_cast<double>(stats.resolved_agents);
}

void attach_averaging_diagnostics(const LocalAveragingResult& averaging,
                                  SolveResult& result) {
  result.diagnostics["ratio_bound"] = averaging.ratio_bound;
  std::size_t peak_ball = 0;
  for (const std::size_t size : averaging.ball_size) {
    peak_ball = std::max(peak_ball, size);
  }
  result.diagnostics["peak_ball"] = static_cast<double>(peak_ball);
  result.diagnostics["lp_solves"] = static_cast<double>(averaging.lp_solves);
  if (averaging.view_classes > 0) {
    result.diagnostics["view_classes"] =
        static_cast<double>(averaging.view_classes);
    result.diagnostics["dedup_ratio"] = averaging.dedup_ratio;
  }
}

/// Shared body of the selfstab-* entries: replay the request's fault
/// plan against a self-stabilizing execution, then recover with clean
/// rounds and report how many it took. The stabilization contract — at
/// most horizon + 1 clean rounds from ANY state — is enforced, not just
/// measured: exceeding it is a CheckError.
void run_selfstab(Session& session, const SolveRequest& request,
                  SolveResult& result,
                  SelfStabilizingSolver::Algorithm algorithm) {
  LocalAveragingOptions options = averaging_options(request);
  options.deduplicate = false;  // the per-agent pipeline is the contract
  SelfStabilizingSolver solver(session.instance(), algorithm, options);

  FaultPlan plan;
  if (!request.fault_plan.empty()) {
    plan = FaultPlan::parse(request.fault_plan);
  }
  FaultInjector faults(std::move(plan));
  const std::int32_t faulty_rounds = solver.run_plan(faults);

  obs::Registry& metrics = obs::Registry::global();
  static obs::Counter& injected = metrics.counter("fault.injected");
  static obs::Counter& recovery_rounds_total =
      metrics.counter("selfstab.rounds_to_legitimate");
  static obs::Counter& recoveries = metrics.counter("selfstab.recoveries");
  injected.add(faults.faults_injected());

  std::int32_t recovery_rounds = 0;
  while (!solver.is_legitimate()) {
    MMLP_CHECK_MSG(recovery_rounds <= solver.horizon(),
                   "self-stabilization contract violated: still illegitimate "
                   "after " << recovery_rounds << " clean rounds (horizon "
                            << solver.horizon() << ", plan '"
                            << faults.plan().serialize() << "')");
    cancel::checkpoint();
    solver.knowledge().step();
    ++recovery_rounds;
  }
  recovery_rounds_total.add(recovery_rounds);
  recoveries.increment();

  result.x = solver.output();
  result.has_solution = true;
  result.diagnostics["faulty_rounds"] = static_cast<double>(faulty_rounds);
  result.diagnostics["faults_injected"] =
      static_cast<double>(faults.faults_injected());
  result.diagnostics["rounds_to_legitimate"] =
      static_cast<double>(recovery_rounds);
  result.diagnostics["horizon"] = static_cast<double>(solver.horizon());
  if (algorithm == SelfStabilizingSolver::Algorithm::kAveraging) {
    result.diagnostics["R"] = static_cast<double>(request.R);
  }
}

SolverRegistry make_builtin() {
  SolverRegistry registry;
  registry.add({
      .name = "safe",
      .description = "eq. (2) per-agent rule; horizon 1, Δ_I^V-approximation",
      .local = true,
      .run =
          [](Session& session, const SolveRequest& request,
             SolveResult& result) {
            const SafeOptions options{.deduplicate = request.deduplicate};
            if (request.incremental) {
              IncrementalStats stats;
              result.x = safe_solution_incremental(session, options, &stats);
              attach_incremental_diagnostics(stats, result);
            } else {
              result.x = safe_solution_with(session, options);
            }
            result.has_solution = true;
          },
  });
  registry.add({
      .name = "averaging",
      .description =
          "Theorem 3 local averaging: view LPs + β damping (knobs: R, "
          "damping, collaboration_oblivious, simplex)",
      .local = true,
      .run =
          [](Session& session, const SolveRequest& request,
             SolveResult& result) {
            LocalAveragingResult averaging;
            if (request.incremental) {
              IncrementalStats stats;
              averaging = local_averaging_incremental(
                  session, averaging_options(request), &stats);
              attach_incremental_diagnostics(stats, result);
            } else {
              averaging =
                  local_averaging_with(session, averaging_options(request));
            }
            result.x = averaging.x;
            result.has_solution = true;
            attach_averaging_diagnostics(averaging, result);
            result.diagnostics["R"] = static_cast<double>(request.R);
          },
  });
  registry.add({
      .name = "uniform",
      .description = "centralised baseline: one global activity level",
      .run =
          [](Session& session, const SolveRequest&, SolveResult& result) {
            result.x = uniform_solution_with(session);
            result.has_solution = true;
          },
  });
  registry.add({
      .name = "greedy",
      .description =
          "centralised water-filling baseline (knobs: greedy.max_steps, "
          "greedy.step_fraction, greedy.min_gain)",
      .run =
          [](Session& session, const SolveRequest& request,
             SolveResult& result) {
            GreedyResult greedy = greedy_waterfill_with(session, request.greedy);
            result.x = std::move(greedy.x);
            result.has_solution = true;
            result.diagnostics["steps"] = static_cast<double>(greedy.steps);
          },
  });
  registry.add({
      .name = "optimal",
      .description =
          "global optimum ω* via dense simplex, MWU fallback at scale "
          "(knobs: optimal.method, optimal.simplex_agent_limit, simplex)",
      .run =
          [](Session& session, const SolveRequest& request,
             SolveResult& result) {
            OptimalOptions options = request.optimal;
            options.simplex = request.simplex;
            OptimalResult optimal = solve_optimal_with(session, options);
            result.x = std::move(optimal.x);
            result.has_solution = true;
            result.diagnostics["exact"] = optimal.exact ? 1.0 : 0.0;
            result.diagnostics["used_simplex"] =
                optimal.method_used == OptimalMethod::kSimplex ? 1.0 : 0.0;
          },
  });
  registry.add({
      .name = "sublinear",
      .description =
          "sublinear-time mean-party-benefit estimate (knobs: samples, "
          "confidence, seed, R; no solution vector)",
      .local = true,
      .run =
          [](Session& session, const SolveRequest& request,
             SolveResult& result) {
            SublinearOptions options;
            options.algorithm = LocalAlgorithmKind::kSafe;
            options.samples = request.samples;
            options.R = request.R;
            options.confidence = request.confidence;
            options.seed = request.seed;
            const SublinearEstimate estimate =
                estimate_mean_party_benefit_with(session, options);
            result.has_solution = false;
            result.diagnostics["mean_benefit"] = estimate.mean_benefit;
            result.diagnostics["half_width"] = estimate.half_width;
            result.diagnostics["value_bound"] = estimate.value_bound;
            result.diagnostics["agents_evaluated"] =
                static_cast<double>(estimate.agents_evaluated);
            result.diagnostics["samples"] =
                static_cast<double>(estimate.samples);
          },
  });
  registry.add({
      .name = "distributed-safe",
      .description =
          "LOCAL-model safe: flood 1 round, per-agent eq. (2); bitwise "
          "equal to safe (knobs: collaboration_oblivious)",
      .local = true,
      .run =
          [](Session& session, const SolveRequest& request,
             SolveResult& result) {
            result.x = distributed_safe_with(session,
                                             request.collaboration_oblivious);
            result.has_solution = true;
          },
  });
  registry.add({
      .name = "distributed-averaging",
      .description =
          "LOCAL-model Theorem 3: flood 2R+1 rounds, per-agent re-solve; "
          "bitwise equal to averaging (knobs: R, collaboration_oblivious, "
          "simplex; damping fixed to the per-agent rule)",
      .local = true,
      .run =
          [](Session& session, const SolveRequest& request,
             SolveResult& result) {
            DistAveragingStats stats;
            if (request.incremental) {
              IncrementalStats inc;
              result.x = distributed_local_averaging_incremental(
                  session, averaging_options(request), &stats, &inc);
              attach_incremental_diagnostics(inc, result);
            } else {
              result.x = distributed_local_averaging_with(
                  session, averaging_options(request), &stats);
            }
            result.has_solution = true;
            result.diagnostics["R"] = static_cast<double>(request.R);
            result.diagnostics["lp_solves"] =
                static_cast<double>(stats.decisions);
            if (request.deduplicate) {
              result.diagnostics["view_classes"] =
                  static_cast<double>(stats.view_classes);
              result.diagnostics["dedup_ratio"] = stats.dedup_ratio;
            }
          },
  });
  registry.add({
      .name = "selfstab-safe",
      .description =
          "self-stabilizing safe: replay fault_plan, recover within "
          "horizon+1 clean rounds, then eq. (2); bitwise equal to safe "
          "(knobs: fault_plan, collaboration_oblivious)",
      .local = true,
      .faultable = true,
      .run =
          [](Session& session, const SolveRequest& request,
             SolveResult& result) {
            run_selfstab(session, request, result,
                         SelfStabilizingSolver::Algorithm::kSafe);
          },
  });
  registry.add({
      .name = "selfstab-averaging",
      .description =
          "self-stabilizing Theorem 3: replay fault_plan, recover within "
          "2R+2 clean rounds, then the Section 5.1 pipeline; bitwise equal "
          "to distributed-averaging (knobs: fault_plan, R, "
          "collaboration_oblivious, simplex)",
      .local = true,
      .faultable = true,
      .run =
          [](Session& session, const SolveRequest& request,
             SolveResult& result) {
            run_selfstab(session, request, result,
                         SelfStabilizingSolver::Algorithm::kAveraging);
          },
  });
  return registry;
}

/// The obs counters surfaced as SolveResult.counters, as
/// (registry name, diagnostics key) pairs.
constexpr std::pair<const char*, const char*> kSurfacedCounters[] = {
    {"simplex.solves", "simplex_solves"},
    {"simplex.pivots", "simplex_pivots"},
    {"bfs.ball_expansions", "bfs_ball_expansions"},
    {"view_class.canonicalizations", "view_class_canonicalizations"},
    {"view_class.prehash_skips", "view_class_prehash_skips"},
    {"scratch.leases", "scratch_leases"},
    {"fault.injected", "faults_injected"},
    {"selfstab.rounds_to_legitimate", "rounds_to_legitimate"},
    {"engine.timeouts", "timeouts"},
    {"engine.cancellations", "cancellations"},
    {"session.integrity_fallbacks", "integrity_fallbacks"},
};

std::int64_t counter_value(const obs::MetricsSnapshot& snapshot,
                           const char* name) {
  const auto it = snapshot.counters.find(name);
  return it != snapshot.counters.end() ? it->second : 0;
}

/// Turns the tracer on for one request and restores it on scope exit; a
/// no-op when tracing is already enabled (or not requested), so nested
/// or batch-level enablement wins.
class ScopedTraceEnable {
 public:
  explicit ScopedTraceEnable(bool want)
      : owns_(want && !obs::tracing_enabled()) {
    if (owns_) {
      obs::Tracer::instance().set_enabled(true);
    }
  }
  ~ScopedTraceEnable() {
    if (owns_) {
      obs::Tracer::instance().set_enabled(false);
    }
  }
  ScopedTraceEnable(const ScopedTraceEnable&) = delete;
  ScopedTraceEnable& operator=(const ScopedTraceEnable&) = delete;

 private:
  bool owns_;
};

}  // namespace

void SolverRegistry::add(Entry entry) {
  MMLP_CHECK_MSG(!entry.name.empty(), "solver entry must be named");
  MMLP_CHECK_MSG(entry.run != nullptr,
                 "solver entry '" << entry.name << "' has no run function");
  const auto [it, inserted] = entries_.emplace(entry.name, std::move(entry));
  MMLP_CHECK_MSG(inserted, "duplicate solver entry '" << it->first << "'");
}

bool SolverRegistry::contains(const std::string& name) const {
  return entries_.find(name) != entries_.end();
}

const SolverRegistry::Entry& SolverRegistry::find(
    const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::ostringstream known;
    for (const auto& [key, entry] : entries_) {
      known << (known.tellp() > 0 ? ", " : "") << key;
    }
    MMLP_CHECK_MSG(false, "unknown algorithm '" << name << "' (registered: "
                                                << known.str() << ")");
  }
  return it->second;
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    names.push_back(key);
  }
  return names;  // std::map iteration is already sorted
}

const SolverRegistry& SolverRegistry::builtin() {
  static const SolverRegistry registry = make_builtin();
  return registry;
}

std::span<const std::pair<const char*, const char*>> surfaced_counter_names() {
  return kSurfacedCounters;
}

const char* solve_status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOk:
      return "ok";
    case SolveStatus::kTimeout:
      return "timeout";
    case SolveStatus::kCancelled:
      return "cancelled";
  }
  return "ok";
}

SolveResult solve(Session& session, const SolveRequest& request,
                  const SolverRegistry& registry, CancelToken* cancel) {
  const SolverRegistry::Entry& entry = registry.find(request.algorithm);
  MMLP_CHECK_MSG(
      request.threads == 0 || request.threads == session.thread_count(),
      "request wants " << request.threads << " threads but the session pool "
                       << "has " << session.thread_count()
                       << " workers (size the session, not the request)");
  MMLP_CHECK_MSG(request.shards <= 1,
                 "request wants " << request.shards << " shards but the "
                                  << "serving session is not sharded (serve "
                                  << "it through a ShardedSession, e.g. "
                                  << "mmlp_batch --shards N)");
  MMLP_CHECK_MSG(request.deadline_ms >= 0,
                 "deadline_ms must be >= 0 (0 = unlimited), got "
                     << request.deadline_ms);
  MMLP_CHECK_MSG(request.fault_plan.empty() || entry.faultable,
                 "algorithm '" << entry.name
                               << "' does not replay fault plans (use a "
                               << "selfstab-* algorithm)");

  SolveResult result;
  result.algorithm = entry.name;

  // The caller's token (so an explicit cancel() is observed) or a
  // request-local one; either way deadline_ms arms it.
  CancelToken local_token;
  CancelToken* token = cancel != nullptr ? cancel : &local_token;
  if (request.deadline_ms > 0) {
    token->set_deadline_after_ms(request.deadline_ms);
  }

  const ScopedTraceEnable trace_scope(request.trace);
  obs::Registry& metrics = obs::Registry::global();
  static obs::Counter& requests = metrics.counter("engine.requests");
  static obs::Counter& timeouts = metrics.counter("engine.timeouts");
  static obs::Counter& cancellations = metrics.counter("engine.cancellations");
  requests.increment();
  const obs::MetricsSnapshot counters_before = metrics.snapshot();

  const SessionStats before = session.stats();
  WallTimer timer;
  try {
    const cancel::CancelScope scope(token);
    token->raise_if_expired();
    obs::ObsSpan span(entry.name.c_str(), "engine.solve");
    entry.run(session, request, result);
  } catch (const CancelledError& error) {
    // Cooperative abort: the solver unwound through the bulk scheduler's
    // poison path, so no partial work escaped — session caches either
    // completed their build or were never inserted, and incremental
    // memos invalidate themselves before any in-place mutation. Report
    // through the status taxonomy instead of rethrowing.
    result.status = error.reason() == CancelReason::kDeadline
                        ? SolveStatus::kTimeout
                        : SolveStatus::kCancelled;
    result.error = error.what();
    result.has_solution = false;
    result.x.clear();
    result.diagnostics.clear();
    (result.status == SolveStatus::kTimeout ? timeouts : cancellations)
        .increment();
  }
  result.total_ms = timer.milliseconds();
  const SessionStats after = session.stats();

  metrics.histogram("engine.request_ms").observe(result.total_ms);
  const obs::MetricsSnapshot counters_after = metrics.snapshot();
  for (const auto& [name, key] : kSurfacedCounters) {
    result.counters[key] = counter_value(counters_after, name) -
                           counter_value(counters_before, name);
  }
  // Stats are session-global, so when solves overlap on one session a
  // request may observe cache work another request paid for; clamp the
  // derived solve_ms so the breakdown stays sane (see SolveResult docs).
  result.cache_build_ms =
      std::min(after.cache_build_ms - before.cache_build_ms, result.total_ms);
  result.solve_ms = result.total_ms - result.cache_build_ms;
  result.cache_hits = after.cache_hits - before.cache_hits;
  result.cache_misses = after.cache_misses - before.cache_misses;

  if (result.has_solution) {
    const Evaluation evaluation =
        evaluate(session.instance(), result.x, &result.party_benefit);
    result.omega = evaluation.omega;
    result.feasible = evaluation.feasible();
  }
  return result;
}

SolveResult solve(Session& session, const SolveRequest& request,
                  CancelToken* cancel) {
  return solve(session, request, SolverRegistry::builtin(), cancel);
}

}  // namespace mmlp::engine

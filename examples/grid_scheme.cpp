// The positive side (Theorem 3): on bounded-growth graphs the averaging
// algorithm is a local approximation *scheme* — pick the radius, get the
// ratio. Demonstrated on a 2D torus with randomised coefficients. The
// whole R-sweep runs on one engine::Session, so the communication graph
// is derived once and each radius adds only its own balls + LPs.
#include <cstdio>

#include "mmlp/engine/session.hpp"
#include "mmlp/engine/solver.hpp"
#include "mmlp/gen/grid.hpp"
#include "mmlp/graph/growth.hpp"
#include "mmlp/util/cli.hpp"
#include "mmlp/util/table.hpp"

int main(int argc, char** argv) {
  using namespace mmlp;
  ArgParser args("Local approximation scheme on grids (paper §5).");
  args.add_flag("side", "torus side length", "10");
  args.add_flag("rmax", "largest view radius R to try", "3");
  args.add_flag("seed", "coefficient seed", "1");
  if (!args.parse(argc, argv)) {
    return 1;
  }
  const auto side = static_cast<std::int32_t>(args.get_int("side"));
  const auto rmax = static_cast<std::int32_t>(args.get_int("rmax"));

  const auto instance = make_grid_instance({
      .dims = {side, side},
      .torus = true,
      .randomize = true,
      .seed = static_cast<std::uint64_t>(args.get_int("seed")),
  });
  engine::Session session(instance);
  const auto exact = engine::solve(session, {.algorithm = "optimal"});
  std::printf("torus %dx%d, randomised coefficients; omega* = %.4f\n\n", side,
              side, exact.omega);

  const auto gamma = growth_profile(session.graph(false), rmax);
  TableWriter table({"R", "horizon", "gamma(R-1)*gamma(R)", "set bound",
                     "achieved omega", "measured ratio"},
                    4);
  for (std::int32_t R = 1; R <= rmax; ++R) {
    const auto result =
        engine::solve(session, {.algorithm = "averaging", .R = R});
    table.add_row({static_cast<std::int64_t>(R),
                   static_cast<std::int64_t>(2 * R + 1),
                   gamma[static_cast<std::size_t>(R - 1)] *
                       gamma[static_cast<std::size_t>(R)],
                   result.diagnostics.at("ratio_bound"), result.omega,
                   exact.omega / result.omega});
  }
  table.print("Averaging algorithm as the radius grows "
              "(bounds and measured ratio fall toward 1)");
  std::printf("\ngrids have gamma(r) = 1 + Theta(1/r), so any target ratio "
              "alpha > 1 is reached\nby some constant radius R — a local "
              "approximation scheme (Theorem 3).\n");
  return 0;
}

// What locality costs: a walk through the Theorem 1 lower-bound
// construction. Builds S, shows that a horizon-1 algorithm cannot
// distinguish S from the adversarial restriction S', and measures the
// price it pays there.
#include <cstdio>

#include "mmlp/core/solution.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/engine/solver.hpp"
#include "mmlp/gen/lowerbound.hpp"
#include "mmlp/util/cli.hpp"

int main(int argc, char** argv) {
  using namespace mmlp;
  ArgParser args("Theorem 1 lower-bound walkthrough (paper §4).");
  args.add_flag("d", "type I fanout (Delta_V^I = d+1)", "2");
  args.add_flag("D", "type II fanout (Delta_V^K = D+1)", "2");
  args.add_flag("R", "tree parameter (R > r = 1)", "2");
  args.add_flag("seed", "construction seed", "1");
  if (!args.parse(argc, argv)) {
    return 1;
  }

  LowerBoundParams params;
  params.d = static_cast<std::int32_t>(args.get_int("d"));
  params.D = static_cast<std::int32_t>(args.get_int("D"));
  params.r = 1;
  params.R = static_cast<std::int32_t>(args.get_int("R"));
  params.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const auto lb = build_lower_bound_instance(params);

  std::printf("S: %d hypertrees of %d agents each (template Q: %d-regular "
              "bipartite, girth >= 6)\n",
              lb.num_trees, lb.tree_size, lb.degree);

  // The adversary's moves (solves routed through the engine registry).
  engine::Session session_s(lb.instance);
  const auto safe_s = engine::solve(session_s, {.algorithm = "safe"});
  const auto delta = compute_delta(lb, safe_s.x);
  const std::int32_t p = select_p(delta);
  std::printf("safe run on S: omega = %.4f; adversary picks tree p = %d "
              "(delta(p) = %.4f >= 0)\n",
              safe_s.omega, p, delta[static_cast<std::size_t>(p)]);

  const auto sub = build_s_prime(lb, p);
  std::printf("S': %d agents (T_p plus radius-2 balls around its leaves)\n",
              sub.instance.num_agents());

  // What the omniscient solver achieves there.
  const auto x_hat = alternating_solution(sub);
  std::printf("alternating solution x-hat: omega = %.4f (feasible: %s) — so "
              "omega*(S') >= 1\n",
              evaluate(sub.instance, x_hat).omega,
              evaluate(sub.instance, x_hat).feasible() ? "yes" : "NO");

  // What any horizon-1 algorithm is forced into. The radius-1 views of
  // T_p agents are identical in S and S', so the safe algorithm repeats
  // its choices; running it on S' directly gives the same values.
  engine::Session session_sub(sub.instance);
  const double omega_local =
      engine::solve(session_sub, {.algorithm = "safe"}).omega;
  std::printf("safe on S': omega = %.4f  =>  ratio >= %.4f\n", omega_local,
              1.0 / omega_local);
  std::printf("Theorem 1 bound: %.4f (finite-R: %.4f)\n",
              theorem1_bound(params.d, params.D),
              theorem1_bound_finite(params.d, params.D, params.R));
  std::printf("\nconclusion: no matter how the horizon-1 algorithm is "
              "designed, on one of S/S'\nit loses at least the bound — "
              "locality has an unavoidable price here.\n");
  return 0;
}

// Quickstart: define a max-min LP by hand, run all three solver tiers.
//
//   maximise min(benefit of k0, benefit of k1)
//   subject to shared resource budgets, x >= 0.
//
// Three agents: v0 serves k0, v2 serves k1, v1 serves both (half rate).
// v0 and v1 share resource i0; v1 and v2 share resource i1.
#include <cstdio>

#include "mmlp/core/instance.hpp"
#include "mmlp/core/local_averaging.hpp"
#include "mmlp/core/optimal.hpp"
#include "mmlp/core/safe.hpp"
#include "mmlp/core/solution.hpp"

int main() {
  using namespace mmlp;

  // 1. Build the instance.
  Instance::Builder builder;
  const AgentId v0 = builder.add_agent();
  const AgentId v1 = builder.add_agent();
  const AgentId v2 = builder.add_agent();
  const ResourceId i0 = builder.add_resource();
  const ResourceId i1 = builder.add_resource();
  builder.set_usage(i0, v0, 1.0).set_usage(i0, v1, 1.0);
  builder.set_usage(i1, v1, 1.0).set_usage(i1, v2, 1.0);
  const PartyId k0 = builder.add_party();
  const PartyId k1 = builder.add_party();
  builder.set_benefit(k0, v0, 1.0).set_benefit(k0, v1, 0.5);
  builder.set_benefit(k1, v1, 0.5).set_benefit(k1, v2, 1.0);
  const Instance instance = std::move(builder).build();

  const auto bounds = instance.degree_bounds();
  std::printf("instance: %d agents, %d resources, %d parties "
              "(Delta_V^I = %zu)\n\n",
              instance.num_agents(), instance.num_resources(),
              instance.num_parties(), bounds.delta_V_of_I);

  auto report = [&](const char* name, const std::vector<double>& x) {
    const Evaluation eval = evaluate(instance, x);
    std::printf("%-22s x = (%.4f, %.4f, %.4f)  omega = %.4f  feasible = %s\n",
                name, x[0], x[1], x[2], eval.omega,
                eval.feasible() ? "yes" : "NO");
  };

  // 2. The safe algorithm (local, horizon 1, Delta_V^I-approximation).
  report("safe (horizon 1)", safe_solution(instance));

  // 3. The Theorem 3 averaging algorithm (local, horizon 2R+1).
  const auto averaging = local_averaging(instance, {.R = 1});
  report("averaging (R = 1)", averaging.x);
  std::printf("%-22s a-priori ratio bound = %.4f\n", "",
              averaging.ratio_bound);

  // 4. The global optimum (centralised LP).
  const auto exact = solve_optimal(instance);
  report("optimal (global LP)", exact.x);

  const double safe_omega = objective_omega(instance, safe_solution(instance));
  std::printf("\nmeasured ratios: safe %.3f, averaging %.3f "
              "(guarantees: %zu and %.3f)\n",
              exact.omega / safe_omega,
              exact.omega / objective_omega(instance, averaging.x),
              bounds.delta_V_of_I, averaging.ratio_bound);
  return 0;
}

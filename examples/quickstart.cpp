// Quickstart: define a max-min LP by hand, open an engine::Session on
// it, and run the three solver tiers through the unified
// SolveRequest/SolveResult API.
//
//   maximise min(benefit of k0, benefit of k1)
//   subject to shared resource budgets, x >= 0.
//
// Three agents: v0 serves k0, v2 serves k1, v1 serves both (half rate).
// v0 and v1 share resource i0; v1 and v2 share resource i1.
#include <cstdio>

#include "mmlp/core/instance.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/engine/solver.hpp"

int main() {
  using namespace mmlp;

  // 1. Build the instance.
  Instance::Builder builder;
  const AgentId v0 = builder.add_agent();
  const AgentId v1 = builder.add_agent();
  const AgentId v2 = builder.add_agent();
  const ResourceId i0 = builder.add_resource();
  const ResourceId i1 = builder.add_resource();
  builder.set_usage(i0, v0, 1.0).set_usage(i0, v1, 1.0);
  builder.set_usage(i1, v1, 1.0).set_usage(i1, v2, 1.0);
  const PartyId k0 = builder.add_party();
  const PartyId k1 = builder.add_party();
  builder.set_benefit(k0, v0, 1.0).set_benefit(k0, v1, 0.5);
  builder.set_benefit(k1, v1, 0.5).set_benefit(k1, v2, 1.0);
  const Instance instance = std::move(builder).build();

  const auto bounds = instance.degree_bounds();
  std::printf("instance: %d agents, %d resources, %d parties "
              "(Delta_V^I = %zu)\n\n",
              instance.num_agents(), instance.num_resources(),
              instance.num_parties(), bounds.delta_V_of_I);

  // 2. Open a session: it owns the worker pool and caches every derived
  // structure (communication graph, balls, growth sets, LP scratch), so
  // each subsequent request pays only for its own algorithm.
  engine::Session session(instance);

  auto report = [&](const engine::SolveResult& result) {
    std::printf("%-22s x = (%.4f, %.4f, %.4f)  omega = %.4f  feasible = %s\n",
                result.algorithm.c_str(), result.x[0], result.x[1],
                result.x[2], result.omega, result.feasible ? "yes" : "NO");
    return result;
  };

  // 3. The safe algorithm (local, horizon 1, Delta_V^I-approximation).
  report(engine::solve(session, {.algorithm = "safe"}));

  // 4. The Theorem 3 averaging algorithm (local, horizon 2R+1).
  const engine::SolveResult averaging =
      report(engine::solve(session, {.algorithm = "averaging", .R = 1}));
  std::printf("%-22s a-priori ratio bound = %.4f\n", "",
              averaging.diagnostics.at("ratio_bound"));

  // 5. The global optimum (centralised LP).
  const engine::SolveResult exact =
      report(engine::solve(session, {.algorithm = "optimal"}));

  const double safe_omega =
      engine::solve(session, {.algorithm = "safe"}).omega;
  std::printf("\nmeasured ratios: safe %.3f, averaging %.3f "
              "(guarantees: %zu and %.3f)\n",
              exact.omega / safe_omega, exact.omega / averaging.omega,
              bounds.delta_V_of_I, averaging.diagnostics.at("ratio_bound"));
  return 0;
}

// Section 2 application: maximise the lifetime of a two-tier sensor
// network. Builds a random geometric deployment, prints its structure,
// then compares the local algorithms against the optimum and reports
// per-area data rates and the bottleneck device.
#include <cstdio>

#include "mmlp/core/solution.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/engine/solver.hpp"
#include "mmlp/gen/sensor.hpp"
#include "mmlp/util/cli.hpp"
#include "mmlp/util/table.hpp"

int main(int argc, char** argv) {
  using namespace mmlp;
  ArgParser args("Two-tier sensor network lifetime maximisation (paper §2).");
  args.add_flag("sensors", "number of sensor devices", "60");
  args.add_flag("relays", "number of relay nodes", "16");
  args.add_flag("areas", "number of monitored areas", "9");
  args.add_flag("radio", "sensor-relay radio range", "0.3");
  args.add_flag("seed", "placement seed", "1");
  if (!args.parse(argc, argv)) {
    return 1;
  }

  SensorNetworkOptions options;
  options.num_sensors = static_cast<std::int32_t>(args.get_int("sensors"));
  options.num_relays = static_cast<std::int32_t>(args.get_int("relays"));
  options.num_areas = static_cast<std::int32_t>(args.get_int("areas"));
  options.radio_range = args.get_double("radio");
  options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const auto net = make_sensor_network(options);

  std::printf("deployment: %zu wireless links (agents), %d resources "
              "(device batteries), %d covered areas\n\n",
              net.links.size(), net.instance.num_resources(),
              net.instance.num_parties());

  // One session serves all three solver tiers.
  engine::Session session(net.instance);
  const auto safe = engine::solve(session, {.algorithm = "safe"});
  const auto averaging =
      engine::solve(session, {.algorithm = "averaging", .R = 1});
  const auto exact = engine::solve(session, {.algorithm = "optimal"});

  TableWriter table({"algorithm", "horizon", "lifetime omega", "vs optimal"},
                    4);
  table.add_row({std::string("safe"), std::string("1"), safe.omega,
                 safe.omega / exact.omega});
  table.add_row({std::string("averaging R=1"), std::string("3"),
                 averaging.omega, averaging.omega / exact.omega});
  table.add_row({std::string("optimal (global)"), std::string("-"),
                 exact.omega, 1.0});
  table.print("Guaranteed per-area data volume per battery unit");

  // Bottleneck analysis under the optimal schedule.
  const Evaluation eval = evaluate(net.instance, exact.x);
  std::printf("\nbottleneck: area/party %d limits the lifetime; resource %d "
              "is fully drained\n",
              eval.argmin_party, eval.argmax_resource);
  std::printf("interpretation: with these flows the network delivers %.4f "
              "units of data\nfrom every monitored area before the first "
              "battery dies.\n",
              exact.omega);
  return 0;
}

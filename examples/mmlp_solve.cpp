// Command-line solver: read a max-min LP from a file (or generate one),
// run the chosen algorithm(s), report ω and per-entity diagnostics.
//
//   mmlp_solve --input instance.mmlp --algorithm all
//   mmlp_solve --generate grid --side 8 --algorithm averaging --radius 2
//   mmlp_solve --generate sensor --seed 3 --output /tmp/net.mmlp
//
// Algorithms are resolved through the engine::SolverRegistry — any
// registered name works (--algorithm distributed-averaging, sublinear,
// ...), "all" runs the standard comparison set, and every solve shares
// one warm engine::Session so repeated algorithms reuse the cached
// graph/ball structures.
//
// The instance format is the plain-text round-trip format of
// Instance::serialize(): a header line `mmlp <agents> <resources>
// <parties>`, then `a <i> <v> <value>` and `c <k> <v> <value>` records.
#include <fstream>
#include <iostream>
#include <sstream>

#include "mmlp/api.hpp"

namespace {

mmlp::Instance load_or_generate(const mmlp::ArgParser& args) {
  using namespace mmlp;
  const std::string input = args.get_string("input");
  if (!input.empty()) {
    std::ifstream in(input);
    MMLP_CHECK_MSG(static_cast<bool>(in), "cannot open " << input);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return Instance::deserialize(buffer.str());
  }
  const std::string kind = args.get_string("generate");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const auto side = static_cast<std::int32_t>(args.get_int("side"));
  if (kind == "grid") {
    return make_grid_instance(
        {.dims = {side, side}, .torus = true, .randomize = true, .seed = seed});
  }
  if (kind == "sensor") {
    SensorNetworkOptions options;
    options.seed = seed;
    return make_sensor_network(options).instance;
  }
  if (kind == "isp") {
    IspOptions options;
    options.seed = seed;
    return make_isp_network(options).instance;
  }
  if (kind == "random") {
    return make_random_instance({.num_agents = side * side, .seed = seed});
  }
  MMLP_CHECK_MSG(false, "unknown generator '" << kind
                        << "' (grid|sensor|isp|random)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmlp;
  ArgParser args("Solve a max-min LP with local and centralised algorithms.");
  args.add_flag("input", "instance file (mmlp text format); empty = generate",
                "");
  args.add_flag("generate", "generator when no input: grid|sensor|isp|random",
                "grid");
  args.add_flag("side", "generator size parameter", "8");
  args.add_flag("seed", "generator seed", "1");
  args.add_flag("algorithm", "a registry name (safe|averaging|greedy|...) or 'all'",
                "all");
  args.add_flag("radius", "averaging view radius R", "1");
  args.add_flag("output", "write the instance to this file and exit", "");
  if (!args.parse(argc, argv)) {
    return 1;
  }

  const Instance instance = load_or_generate(args);
  const std::string output = args.get_string("output");
  if (!output.empty()) {
    std::ofstream out(output);
    MMLP_CHECK_MSG(static_cast<bool>(out), "cannot write " << output);
    out << instance.serialize();
    std::cout << "wrote " << instance.num_agents() << " agents, "
              << instance.num_nonzeros() << " nonzeros to " << output << '\n';
    return 0;
  }

  const auto bounds = instance.degree_bounds();
  std::cout << "instance: " << instance.num_agents() << " agents, "
            << instance.num_resources() << " resources, "
            << instance.num_parties() << " parties"
            << " (D_V^I=" << bounds.delta_V_of_I
            << ", D_V^K=" << bounds.delta_V_of_K << ")\n\n";

  // One warm session serves every requested algorithm; the registry
  // resolves names (an unknown one fails with the registered list).
  const std::string algorithm = args.get_string("algorithm");
  const auto radius = static_cast<std::int32_t>(args.get_int("radius"));
  const std::vector<std::string> selected =
      algorithm == "all"
          ? std::vector<std::string>{"safe", "averaging", "greedy", "optimal"}
          : std::vector<std::string>{algorithm};

  engine::Session session(instance);
  TableWriter table({"algorithm", "omega", "feasible", "ms"}, 6);
  for (const std::string& name : selected) {
    const engine::SolveResult result =
        engine::solve(session, {.algorithm = name, .R = radius});
    std::string label = result.algorithm;
    if (result.diagnostics.contains("R")) {
      label += " R=" + std::to_string(radius);
    }
    if (result.has_solution) {
      table.add_row({label, result.omega,
                     std::string(result.feasible ? "yes" : "NO"),
                     result.total_ms});
    } else {
      // Estimators carry their answer in the diagnostics.
      for (const auto& [key, value] : result.diagnostics) {
        std::cout << label << " " << key << " = " << value << '\n';
      }
    }
  }
  if (table.num_rows() > 0) {
    table.print("Results");
  }
  return 0;
}

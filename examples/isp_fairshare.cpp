// Section 2 application: ISP fair-share bandwidth. Each customer routes
// over its last-mile links through shared access routers; the operator
// maximises the worst customer's throughput.
#include <cstdio>

#include "mmlp/core/solution.hpp"
#include "mmlp/engine/session.hpp"
#include "mmlp/engine/solver.hpp"
#include "mmlp/gen/isp.hpp"
#include "mmlp/util/cli.hpp"
#include "mmlp/util/table.hpp"

int main(int argc, char** argv) {
  using namespace mmlp;
  ArgParser args("ISP fair-share allocation (paper §2).");
  args.add_flag("customers", "number of major customers", "12");
  args.add_flag("routers", "number of access routers", "6");
  args.add_flag("seed", "topology seed", "1");
  if (!args.parse(argc, argv)) {
    return 1;
  }

  IspOptions options;
  options.num_customers = static_cast<std::int32_t>(args.get_int("customers"));
  options.num_routers = static_cast<std::int32_t>(args.get_int("routers"));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const auto net = make_isp_network(options);

  std::printf("topology: %d customers, %d last-mile links, %d routers, "
              "%d (link,router) paths\n\n",
              options.num_customers, net.num_links, options.num_routers,
              net.instance.num_agents());

  // One session serves all three solver tiers.
  engine::Session session(net.instance);
  const auto safe = engine::solve(session, {.algorithm = "safe"});
  const auto averaging =
      engine::solve(session, {.algorithm = "averaging", .R = 1});
  const auto exact = engine::solve(session, {.algorithm = "optimal"});

  TableWriter table({"algorithm", "fair share", "vs optimal"}, 4);
  table.add_row({std::string("safe (local)"), safe.omega,
                 safe.omega / exact.omega});
  table.add_row({std::string("averaging R=1 (local)"), averaging.omega,
                 averaging.omega / exact.omega});
  table.add_row({std::string("optimal (centralised)"), exact.omega, 1.0});
  table.print("Worst-served customer's throughput");

  // Per-customer breakdown under the optimum (SolveResult carries the
  // per-party benefits already).
  TableWriter detail({"customer", "throughput"}, 4);
  for (PartyId k = 0; k < net.instance.num_parties(); ++k) {
    detail.add_row({static_cast<std::int64_t>(k),
                    exact.party_benefit[static_cast<std::size_t>(k)]});
  }
  std::printf("\n");
  detail.print("Per-customer throughput at the optimum (max-min fair floor)");
  return 0;
}
